"""Storage cost model (paper §7.8, Figures 15-16).

The paper prices a server as the data SSDs remaining after reduction
plus the reduction machinery (CPU share, FPGAs scaled by resource
utilization with 70% usable fabric, DRAM for the table cache, table
SSDs), against a no-reduction server that simply buys ``capacity`` worth
of SSDs.  Unit prices follow §7.8: 0.5 $/GB SSD, 5.5 $/GB DRAM, $7000
per 22-core Xeon, $7000 per high-end FPGA.

The baseline's defining problem (Figure 16) also falls out: past its
per-socket throughput ceiling it must apply *partial* reduction — the
overflow is stored unreduced — so its SSD bill grows with throughput
while FIDR's stays flat.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

__all__ = ["CostParameters", "CostBreakdown", "StorageCostModel"]

GB = 1e9


@dataclass(frozen=True)
class CostParameters:
    """§7.8's unit prices and utilization assumptions."""

    ssd_per_gb: float = 0.5
    dram_per_gb: float = 5.5
    cpu_price: float = 7000.0  #: 22-core Xeon E5-4669 v4
    cpu_cores: int = 22
    fpga_price: float = 7000.0  #: Xilinx VCU9P-class board
    fpga_usable_fraction: float = 0.70

    # Reduction effectiveness (50% dedup x 50% compression).
    stored_fraction: float = 0.25

    # Device capability assumptions for sizing at a target throughput.
    nic_rate: float = 8 * GB  #: one FIDR NIC (64 Gbps)
    compression_engine_rate: float = 12.8 * GB
    cache_engine_rate: float = 64 * GB  #: Table 5's large-tree estimate

    # FPGA resource utilizations (Tables 4-5) for cost scaling.
    nic_reduction_utilization: float = 0.245
    compression_utilization: float = 0.30
    cache_engine_utilization: float = 0.294

    # Per-socket metadata memory (table cache) and table-SSD overheads.
    table_cache_gb: float = 100.0
    table_entry_bytes: int = 38
    chunk_bytes: int = 4096


@dataclass
class CostBreakdown:
    """Dollar cost by component."""

    components: Dict[str, float] = field(default_factory=dict)

    @property
    def total(self) -> float:
        return sum(self.components.values())

    def savings_vs(self, reference: "CostBreakdown") -> float:
        """Fractional saving relative to a reference system."""
        if reference.total == 0:
            raise ValueError("reference system has zero cost")
        return 1.0 - self.total / reference.total


class StorageCostModel:
    """Cost of serving (throughput, effective capacity) per §7.8."""

    def __init__(self, params: Optional[CostParameters] = None):
        self.params = params if params is not None else CostParameters()

    # -- reference ---------------------------------------------------------------
    def no_reduction_cost(self, capacity_bytes: float) -> CostBreakdown:
        """A server that just buys the full capacity in SSDs."""
        return CostBreakdown(
            components={"data_ssd": capacity_bytes / GB * self.params.ssd_per_gb}
        )

    # -- shared pieces --------------------------------------------------------------
    def _reduced_storage_cost(self, capacity_bytes: float,
                              reduced_fraction: float = 1.0) -> Dict[str, float]:
        """SSD + metadata costs when ``reduced_fraction`` of the data is
        reduced and the remainder stored raw (partial reduction)."""
        p = self.params
        stored = capacity_bytes * (
            reduced_fraction * p.stored_fraction + (1.0 - reduced_fraction)
        )
        unique_stored = capacity_bytes * reduced_fraction * p.stored_fraction
        # Hash-PBN table sized by unique chunks (one entry per chunk).
        table_bytes = unique_stored / p.chunk_bytes * p.table_entry_bytes
        return {
            "data_ssd": stored / GB * p.ssd_per_gb,
            "table_ssd": table_bytes / GB * p.ssd_per_gb,
            "table_cache_dram": p.table_cache_gb * p.dram_per_gb * reduced_fraction,
        }

    def _fpga_unit_cost(self, utilization: float) -> float:
        p = self.params
        return p.fpga_price * min(1.0, utilization / p.fpga_usable_fraction)

    # -- FIDR ---------------------------------------------------------------------------
    def fidr_cost(
        self,
        throughput: float,
        capacity_bytes: float,
        cpu_cores_per_75gbps: float = 17.0,
    ) -> CostBreakdown:
        """FIDR serves the full throughput with reduction on.

        ``cpu_cores_per_75gbps`` comes from the measured FIDR report
        (Figure 12); the default matches the write-heavy workloads.
        """
        p = self.params
        components = self._reduced_storage_cost(capacity_bytes, 1.0)
        cores = cpu_cores_per_75gbps * throughput / (75 * GB)
        components["cpu"] = p.cpu_price * cores / p.cpu_cores
        nics = throughput / p.nic_rate
        components["fidr_nics"] = nics * self._fpga_unit_cost(
            p.nic_reduction_utilization
        )
        engines = throughput / p.compression_engine_rate
        components["compression_engines"] = engines * self._fpga_unit_cost(
            p.compression_utilization
        )
        cache_engines = throughput / p.cache_engine_rate
        components["cache_hw_engines"] = cache_engines * self._fpga_unit_cost(
            p.cache_engine_utilization
        )
        return CostBreakdown(components=components)

    # -- baseline -------------------------------------------------------------------------
    def baseline_cost(
        self,
        throughput: float,
        capacity_bytes: float,
        per_socket_cap: float = 25 * GB,
        cpu_cores_per_75gbps: float = 67.0,
        sockets: int = 1,
    ) -> CostBreakdown:
        """The baseline reduces only what its socket ceiling allows.

        Up to ``per_socket_cap × sockets`` of the stream is reduced;
        the overflow is stored raw (partial reduction, §7.8/Figure 16).
        """
        p = self.params
        reducible = min(throughput, per_socket_cap * sockets)
        reduced_fraction = reducible / throughput if throughput > 0 else 1.0
        components = self._reduced_storage_cost(capacity_bytes, reduced_fraction)
        cores = cpu_cores_per_75gbps * reducible / (75 * GB)
        components["cpu"] = p.cpu_price * cores / p.cpu_cores
        # Integrated hash+compression FPGAs sized for the reduced share.
        engines = reducible / p.compression_engine_rate
        components["compression_engines"] = engines * self._fpga_unit_cost(
            p.compression_utilization
        )
        return CostBreakdown(components=components)

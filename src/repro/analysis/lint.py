"""repro-lint: AST-level concurrency and determinism rules for this repo.

Generic linters check style; this one checks the *contracts* the
codebase relies on for correctness of its results:

=====  ==============================================================
Rule   Contract enforced
=====  ==============================================================
R001   No blocking calls (``time.sleep``, sync socket/file I/O, bulk
       ``zlib``) inside ``async def`` in the serving layer — one
       blocked coroutine stalls every connection on the loop.
R002   Fields declared ``# guarded-by: <lock|discipline>`` are only
       mutated with the guard demonstrably held: inside
       ``with <lock>:``, in a function annotated
       ``# repro-lint: holds <guard>``, or (for ownership
       disciplines such as ``single-writer``) in the declaring
       class/module.
R003   No wall-clock or process-global randomness (``time.time``,
       ``random.random``, …) in ``repro.sim`` / ``repro.systems`` —
       results must be a pure function of inputs and seeds.
R004   No float-tainted arithmetic assigned to byte/chunk/count
       ledger fields in ``repro.datared`` — reduction ratios are
       derived, the ledgers themselves stay integral and exact.
R005   No bare ``except:`` and no silently swallowed broad excepts in
       the serving layer — every error must map to a protocol error
       frame or a typed :class:`~repro.errors.ReproError`.
R006   No byte copies (``bytes(…)``/``bytearray(…)``/``.tobytes()``/
       slicing a non-``memoryview``) inside functions annotated
       ``# repro-lint: hot-path`` — the zero-copy write path copies
       payload bytes exactly once, at the container boundary
       (DESIGN.md §5.4).  Each sanctioned copy carries a same-line
       ``# repro-lint: copy-ok <reason>``.
R007   No ad-hoc instrumentation in the data/serving path
       (``repro.datared``/``net``/``systems``/``cache``/``hw``/
       ``parallel``/``sync``, CLI ``__main__`` modules exempt):
       raw ``time.*`` timing calls and ``print``-style metric
       reporting bypass the one observability surface — record
       durations through :mod:`repro.obs.trace` spans and publish
       numbers through the :mod:`repro.obs.metrics` registry so the
       STATS op sees them (DESIGN.md §5.5).
R008   No direct compression/hashing backend calls (``zlib.*``,
       ``hashlib.sha256``, ``zstandard.*``, ``lz4.*``, ``blake3.*``)
       in ``repro.datared``/``repro.systems`` outside the registry
       modules — payload bytes must flow through the codec and
       fingerprint plugins so every chunk carries its codec tag and
       the configured algorithms are actually the ones running
       (DESIGN.md §5.6).  CRC helpers (``zlib.crc32``/``adler32``)
       are not payload codecs and stay allowed.
R009   No direct ``DedupEngine(…)``/``ShardedDedupEngine(…)``
       construction in ``repro.net``/``repro.systems`` outside
       ``repro.systems.factory`` — the serving layer must build
       engines through ``build_engine`` so ``SystemConfig.shards``
       (and the factory's table wiring and seal-lock policy) decide
       the sharding; an ad-hoc engine could silently diverge from the
       configured cluster (DESIGN.md §5.7).
R010   No blocking wait (executor ``.result()``, ``queue.get``/
       ``put``, ``time.sleep``, socket/file I/O, ``subprocess``)
       while a :class:`~repro.sync.DisciplinedLock` is demonstrably
       held — a parked owner stalls every thread queued on the lock,
       and a wait that can re-enter the lock order deadlocks
       (DESIGN.md §5.8).  The whole-program twin (including calls
       that block transitively) is ``repro.analysis.lockgraph``.
R011   Every ``DisciplinedLock`` carries a rank — from the declared
       :data:`repro.sync.LOCK_ORDER` table or an explicit ``rank=``
       keyword — and nested acquisition must follow strictly
       increasing ranks; an inversion is the static signature of a
       lock-order cycle (DESIGN.md §5.8).
R012   Engine/system construction in ``repro.net``/``repro.systems``
       must honour the lifecycle API (DESIGN.md §5.10): a local
       variable bound to ``build_engine(…)``, ``StorageServer(…)``/
       ``StorageServer.build(…)``, a ``ReductionSystem`` subclass or a
       raw engine class must be closed in the same scope —
       ``.close()``/``.shutdown()``, a ``with`` block, or ownership
       transfer (returned, yielded, or stored on ``self``).  A leaked
       engine never writes its final commit fence, so acked writes
       can silently miss the journal.
=====  ==============================================================

Suppress a single line with ``# repro-lint: disable=R001`` (comma
list allowed).  Mark a helper that is only called with a lock held
with ``# repro-lint: holds self.lock`` on its ``def`` line; ``def``
lines may combine annotations (``# repro-lint: holds self.lock,
hot-path``).

Static limits, by design:

* R002 sees attribute *stores* (``self.x = …``, ``+=``, ``del``), not
  mutating method calls (``self.items.append(…)``); the runtime
  :mod:`~repro.analysis.racecheck` detector covers method-granularity
  access.
* Lock guards are enforced per class hierarchy (``self.lock`` means
  *that object's* lock); ownership guards (``single-writer``) are
  additionally enforced by field name across every ``repro.*`` module.

CLI: ``python -m repro.analysis.lint src/ tests/ [--json report.json]``.
Exit status 1 when findings remain after suppression.
"""

from __future__ import annotations

import argparse
import ast
import json
import re
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple, Union

from ..sync import LOCK_ORDER

__all__ = ["Finding", "RULES", "lint_paths", "lint_source", "main"]

RULES: Dict[str, str] = {
    "R000": "file could not be parsed",
    "R001": "blocking call inside async def in the serving layer",
    "R002": "guarded field mutated without its declared guard",
    "R003": "wall-clock/randomness in deterministic simulation code",
    "R004": "float-tainted arithmetic on an integral ledger field",
    "R005": "bare or silently swallowed exception in the serving layer",
    "R006": "byte copy inside a hot-path function without a copy-ok reason",
    "R007": "ad-hoc timing/print instrumentation outside repro.obs",
    "R008": "direct codec/hash backend call outside the plugin registries",
    "R009": "direct engine construction outside the shard factory",
    "R010": "blocking wait while a DisciplinedLock is held",
    "R011": "lock acquisition violating the declared rank order, or an "
    "unranked DisciplinedLock",
    "R012": "engine/system constructed in the serving layer but never "
    "closed (lifecycle API)",
}

_DISABLE_RE = re.compile(r"#\s*repro-lint:\s*disable=([A-Z0-9,\s]+)")
_HOLDS_RE = re.compile(r"#\s*repro-lint:\s*holds\s+([^#\n]+)")
_GUARDED_RE = re.compile(r"#\s*guarded-by:\s*([A-Za-z_][\w.\-]*)")
_HOT_PATH_RE = re.compile(r"#\s*repro-lint:[^#\n]*\bhot-path\b")
#: ``copy-ok`` must state *why* the copy is sanctioned — a bare marker
#: does not suppress.
_COPY_OK_RE = re.compile(r"#\s*repro-lint:\s*copy-ok\s+\S")

#: Calls that block the event loop when issued from a coroutine (R001).
_BLOCKING_CALLS = frozenset(
    {
        "time.sleep",
        "zlib.compress",
        "zlib.decompress",
        "zlib.compressobj",
        "zlib.decompressobj",
        "open",
        "input",
        "os.system",
        "os.popen",
        "subprocess.run",
        "subprocess.call",
        "subprocess.check_call",
        "subprocess.check_output",
        "subprocess.Popen",
        "socket.create_connection",
        "socket.getaddrinfo",
        "socket.socket",
    }
)
_BLOCKING_PREFIXES = ("socket.", "requests.", "urllib.request.")

#: Wall-clock / process-global entropy sources (R003).
_NONDETERMINISTIC_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "datetime.now",
        "datetime.utcnow",
        "datetime.today",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.date.today",
        "date.today",
        "uuid.uuid1",
        "uuid.uuid4",
        "os.urandom",
        "secrets.token_bytes",
        "secrets.token_hex",
    }
)
#: ``random.Random(seed)`` instances are deterministic and allowed; the
#: module-global functions share hidden unseeded state and are not.
_NONDETERMINISTIC_PREFIXES = ("np.random.", "numpy.random.")

#: Raw timing sources R007 bans in the instrumented path — durations
#: belong in :mod:`repro.obs.trace` spans, where the registry's
#: histograms (and hence the STATS op) can see them.
_R007_TIMING_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
    }
)
#: Packages whose runtime code R007 covers.  Workloads, perf harnesses,
#: analysis tooling and ``__main__`` CLIs are presentation layers and
#: stay free to time and print.
_R007_PACKAGES = (
    "repro.datared",
    "repro.net",
    "repro.systems",
    "repro.cache",
    "repro.hw",
    "repro.parallel",
    "repro.sync",
)

#: Modules R008 covers: every payload byte in the reduction path must
#: go through the codec/fingerprint registries.
_R008_PACKAGES = ("repro.datared", "repro.systems")
#: The registries themselves (and their byte-compatible predecessors)
#: are where the direct backend calls legitimately live.
_R008_REGISTRY_MODULES = (
    "repro.datared.codecs",
    "repro.datared.compression",
    "repro.datared.hashing",
)
#: Direct payload-codec/fingerprint backend call prefixes R008 flags.
_R008_BACKEND_PREFIXES = ("zlib.", "zstandard.", "lz4.", "blake3.")
#: Exact names flagged (attribute-path calls like ``hashlib.sha256``).
_R008_BACKEND_CALLS = frozenset({"hashlib.sha256", "hashlib.new"})
#: Checksum helpers that merely share zlib's namespace — not payload
#: codecs (the journal's record CRCs use them).
_R008_ALLOWED = frozenset({"zlib.crc32", "zlib.adler32"})

#: Modules R009 covers: the serving/system layers must build engines
#: through the shard factory so ``SystemConfig.shards`` is the one
#: sharding decision point.
_R009_PACKAGES = ("repro.net", "repro.systems")

#: The factory itself is where direct construction is the job.
_R009_FACTORY_MODULES = ("repro.systems.factory",)

#: Modules R012 covers (the serving/system layers own engine lifetimes;
#: the factory constructs-and-returns by design).
_R012_PACKAGES = ("repro.net", "repro.systems")

#: Constructors whose result carries the engine lifecycle contract
#: (matched on the last dotted component, plus ``StorageServer.build``).
_R012_CTOR_NAMES = frozenset(
    {
        "DedupEngine",
        "ShardedDedupEngine",
        "build_engine",
        "BaselineSystem",
        "FidrSystem",
        "ReductionSystem",
        "StorageServer",
    }
)

#: Method calls that discharge the R012 obligation.
_R012_CLOSERS = frozenset({"close", "shutdown"})

#: Engine constructors R009 flags (matched on the last dotted
#: component, so ``dedup.DedupEngine(...)`` is caught too).
_R009_ENGINE_NAMES = frozenset({"DedupEngine", "ShardedDedupEngine"})

#: ``# lock: <class>`` binds an expression the resolver cannot type
#: (a lock alias, a foreign attribute) to a named lock class — shared
#: with :mod:`repro.analysis.lockgraph`.
_LOCK_CLASS_RE = re.compile(r"#\s*lock:\s*([\w.\-]+)")

#: Waits R010 flags while a DisciplinedLock is held.  Deliberately the
#: *wait* set, not R001's CPU-work set: compressing under the engine
#: lock is the engine's job; parking the owner thread is not.
_R010_WAIT_CALLS = frozenset(
    {
        "time.sleep",
        "open",
        "input",
        "os.system",
        "os.popen",
        "subprocess.run",
        "subprocess.call",
        "subprocess.check_call",
        "subprocess.check_output",
        "socket.create_connection",
        "socket.getaddrinfo",
        "select.select",
    }
)
_R010_WAIT_PREFIXES = ("socket.", "requests.", "urllib.request.")
#: Attribute waits, gated on the receiver's spelling so ``dict.get()``
#: never trips: ``.result()`` blocks on any receiver (futures);
#: ``.get()`` only counts when the receiver looks like a queue, etc.
_R010_ATTR_WAITS: Dict[str, Tuple[str, ...]] = {
    "result": (),
    "get": ("queue",),
    "put": ("queue",),
    "join": ("thread", "queue", "proc", "pool"),
    "wait": ("event", "barrier", "cond", "future", "proc"),
    "recv": ("sock", "conn"),
    "sendall": ("sock", "conn"),
    "accept": ("sock", "listener"),
    "connect": ("sock", "conn"),
}

#: Target names R004 treats as integral ledgers.
_COUNTER_RE = re.compile(
    r"(?:^|_)(bytes|chunks?|count|counts|refcount|refcounts|cycles|ops|"
    r"reads|writes|entries|lbas?|pbns?|sealed|evictions|hits|misses)(?:_|$)",
    re.IGNORECASE,
)


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def as_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }


# ---------------------------------------------------------------------------
# Per-file model
# ---------------------------------------------------------------------------


class _File:
    def __init__(self, path: str, module: str, source: str):
        self.path = path
        self.module = module
        self.source = source
        self.lines = source.splitlines()
        self.parse_error: Optional[Finding] = None
        try:
            self.tree: Optional[ast.Module] = ast.parse(source)
        except SyntaxError as error:
            self.tree = None
            self.parse_error = Finding(
                "R000",
                path,
                error.lineno or 1,
                (error.offset or 1) - 1,
                f"syntax error: {error.msg}",
            )
        self.suppressed: Dict[int, Set[str]] = {}
        for number, text in enumerate(self.lines, start=1):
            match = _DISABLE_RE.search(text)
            if match:
                rules = {
                    token.strip()
                    for token in match.group(1).split(",")
                    if token.strip()
                }
                self.suppressed[number] = rules

    def line(self, number: int) -> str:
        if 1 <= number <= len(self.lines):
            return self.lines[number - 1]
        return ""

    def is_suppressed(self, finding: Finding) -> bool:
        rules = self.suppressed.get(finding.line)
        return bool(rules) and (finding.rule in rules or "all" in rules)


def _module_for_path(path: Path) -> str:
    parts = list(path.parts)
    name = path.stem if path.suffix == ".py" else path.name
    for anchor in ("repro", "tests"):
        if anchor in parts:
            index = len(parts) - 1 - parts[::-1].index(anchor)
            pieces = parts[index:-1] + ([] if name == "__init__" else [name])
            return ".".join(pieces)
    return name


# ---------------------------------------------------------------------------
# Guard registry (R002, pass one)
# ---------------------------------------------------------------------------


@dataclass
class _ClassInfo:
    name: str
    module: str
    bases: List[str]
    #: field name -> guard token (``self.lock`` or a discipline name).
    guards: Dict[str, str]


class _Registry:
    def __init__(self) -> None:
        self.classes: Dict[str, _ClassInfo] = {}
        #: discipline (non-lock) guards, enforced by field name across
        #: every repro.* module: field -> (guard, declaring module, class).
        self.discipline_fields: Dict[str, Tuple[str, str, str]] = {}
        #: (class, attr) -> DisciplinedLock class name, from
        #: ``self.X = DisciplinedLock("n")`` or a ``# lock: n`` line.
        self.lock_attrs: Dict[Tuple[str, str], str] = {}
        #: (module, name) -> lock class, for bare-name bindings.
        self.lock_names: Dict[Tuple[str, str], str] = {}
        #: lock class -> declared rank (explicit ``rank=`` or LOCK_ORDER).
        self.lock_ranks: Dict[str, Optional[int]] = {}

    def declare_lock_class(self, name: str, rank: Optional[int]) -> None:
        declared = rank if rank is not None else LOCK_ORDER.get(name)
        if self.lock_ranks.get(name) is None:
            self.lock_ranks[name] = declared

    def lock_rank(self, name: str) -> Optional[int]:
        rank = self.lock_ranks.get(name)
        return rank if rank is not None else LOCK_ORDER.get(name)

    def resolve_lock_attr(
        self, class_name: Optional[str], attr: str
    ) -> Optional[str]:
        """Lock class bound to ``self.<attr>`` on a class or ancestor."""
        seen: Set[str] = set()
        queue = [class_name] if class_name else []
        while queue:
            current = queue.pop(0)
            if current is None or current in seen:
                continue
            seen.add(current)
            bound = self.lock_attrs.get((current, attr))
            if bound is not None:
                return bound
            info = self.classes.get(current)
            if info is not None:
                queue.extend(info.bases)
        return None

    def add(self, info: _ClassInfo) -> None:
        self.classes[info.name] = info
        for field_name, guard in info.guards.items():
            if not _is_lock_guard(guard):
                self.discipline_fields[field_name] = (
                    guard,
                    info.module,
                    info.name,
                )

    def resolve_guard(
        self, class_name: Optional[str], field_name: str
    ) -> Optional[Tuple[str, str]]:
        """Guard for ``field_name`` on ``class_name`` or an ancestor.

        Returns ``(guard, declaring_class)`` or None.  Ancestry is
        resolved by simple name — enough for a single codebase, and it
        keeps the linter free of import machinery.
        """
        seen: Set[str] = set()
        queue = [class_name] if class_name else []
        while queue:
            current = queue.pop(0)
            if current is None or current in seen:
                continue
            seen.add(current)
            info = self.classes.get(current)
            if info is None:
                continue
            if field_name in info.guards:
                return info.guards[field_name], info.name
            queue.extend(info.bases)
        return None

    def is_descendant(self, class_name: Optional[str], ancestor: str) -> bool:
        seen: Set[str] = set()
        queue = [class_name] if class_name else []
        while queue:
            current = queue.pop(0)
            if current is None or current in seen:
                continue
            seen.add(current)
            if current == ancestor:
                return True
            info = self.classes.get(current)
            if info is not None:
                queue.extend(info.bases)
        return False


def _is_lock_guard(guard: str) -> bool:
    return "." in guard or guard.endswith("lock")


def _base_name(node: ast.expr) -> Optional[str]:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _collect_classes(file: _File, registry: _Registry) -> None:
    if file.tree is None:
        return
    for node in ast.walk(file.tree):
        if not isinstance(node, ast.ClassDef):
            continue
        guards: Dict[str, str] = {}

        def _record(target: ast.expr, line_number: int) -> None:
            match = _GUARDED_RE.search(file.line(line_number))
            if not match:
                return
            if isinstance(target, ast.Name):
                guards[target.id] = match.group(1)
            elif isinstance(target, ast.Attribute) and isinstance(
                target.value, ast.Name
            ):
                if target.value.id == "self":
                    guards[target.attr] = match.group(1)

        for statement in node.body:
            if isinstance(statement, ast.AnnAssign):
                _record(statement.target, statement.lineno)
            elif isinstance(statement, ast.Assign):
                for target in statement.targets:
                    _record(target, statement.lineno)
            elif isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef)):
                for inner in ast.walk(statement):
                    if isinstance(inner, ast.AnnAssign):
                        _record(inner.target, inner.lineno)
                    elif isinstance(inner, ast.Assign):
                        for target in inner.targets:
                            _record(target, inner.lineno)
        bases = [
            name for name in (_base_name(base) for base in node.bases) if name
        ]
        registry.add(_ClassInfo(node.name, file.module, bases, guards))


def _lock_ctor(node: ast.expr) -> Optional[Tuple[Optional[str], Optional[int]]]:
    """``(name, explicit_rank)`` when ``node`` is ``DisciplinedLock(…)``.

    ``name`` is None when the first argument is not a string literal —
    still a construction site (R011 requires a rank it can check).
    """
    if not isinstance(node, ast.Call):
        return None
    callee = _dotted(node.func)
    if callee is None or callee.rsplit(".", 1)[-1] != "DisciplinedLock":
        return None
    name: Optional[str] = None
    if node.args and isinstance(node.args[0], ast.Constant):
        if isinstance(node.args[0].value, str):
            name = node.args[0].value
    rank: Optional[int] = None
    for keyword in node.keywords:
        if keyword.arg == "rank" and isinstance(keyword.value, ast.Constant):
            if isinstance(keyword.value.value, int):
                rank = keyword.value.value
    return name, rank


def _collect_locks(file: _File, registry: _Registry) -> None:
    """Pass-one twin of :func:`_collect_classes` for R010/R011:
    bind ``DisciplinedLock`` construction sites and ``# lock:``
    annotated assignments to named lock classes."""
    if file.tree is None:
        return

    class_stack: List[str] = []

    def record(target: ast.expr, value: ast.expr, line_number: int) -> None:
        lock_name: Optional[str] = None
        ctor = _lock_ctor(value)
        if ctor is not None and ctor[0] is not None:
            lock_name = ctor[0]
            registry.declare_lock_class(ctor[0], ctor[1])
        else:
            match = _LOCK_CLASS_RE.search(file.line(line_number))
            if match:
                lock_name = match.group(1)
                registry.declare_lock_class(lock_name, None)
        if lock_name is None:
            return
        if isinstance(target, ast.Attribute) and isinstance(
            target.value, ast.Name
        ):
            if target.value.id in ("self", "cls") and class_stack:
                registry.lock_attrs[(class_stack[-1], target.attr)] = lock_name
        elif isinstance(target, ast.Name):
            registry.lock_names[(file.module, target.id)] = lock_name

    def walk(node: ast.AST) -> None:
        if isinstance(node, ast.ClassDef):
            class_stack.append(node.name)
            for child in ast.iter_child_nodes(node):
                walk(child)
            class_stack.pop()
            return
        if isinstance(node, ast.Assign):
            for target in node.targets:
                record(target, node.value, node.lineno)
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            record(node.target, node.value, node.lineno)
        for child in ast.iter_child_nodes(node):
            walk(child)

    walk(file.tree)


# ---------------------------------------------------------------------------
# Rule walker (pass two)
# ---------------------------------------------------------------------------


def _scope_nodes(node: ast.AST) -> Iterable[ast.AST]:
    """Walk a function body without descending into nested scopes."""
    for child in ast.iter_child_nodes(node):
        if isinstance(
            child,
            (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda),
        ):
            continue
        yield child
        yield from _scope_nodes(child)


def _dotted(node: ast.expr) -> Optional[str]:
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _normalize(expr: str) -> str:
    return expr.replace(" ", "")


def _attr_chain(node: ast.expr) -> Optional[Tuple[str, List[str]]]:
    """``(root_name, [attr, ...])`` for an attribute store target.

    Unwraps subscripts/stars so ``del self._pending[:n]`` resolves to
    ``("self", ["_pending"])``.
    """
    while isinstance(node, (ast.Subscript, ast.Starred)):
        node = node.value
    attrs: List[str] = []
    while isinstance(node, ast.Attribute):
        attrs.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name) and attrs:
        return node.id, list(reversed(attrs))
    return None


def _is_floaty(node: ast.expr) -> bool:
    """Whether an expression can taint an integral ledger with a float."""
    if isinstance(node, ast.Call):
        name = _dotted(node.func)
        if name in {"int", "len", "round"}:
            return False
        if name == "float":
            return True
    for inner in ast.walk(node):
        if isinstance(inner, ast.Constant) and isinstance(inner.value, float):
            return True
        if isinstance(inner, ast.BinOp) and isinstance(inner.op, ast.Div):
            return True
        if isinstance(inner, ast.Call) and _dotted(inner.func) == "float":
            return True
    return False


def _view_locals(
    node: Union[ast.FunctionDef, ast.AsyncFunctionDef]
) -> Set[str]:
    """Local names bound to ``memoryview`` objects inside ``node``.

    Slicing a memoryview is zero-copy, so R006 must not flag it.  Two
    fixpoint passes over the simple assignments cover the idioms the
    hot path uses (``view = memoryview(payload)`` and re-slices such as
    ``tag, body = view[:1], view[1:]``) without real type inference.
    """
    views: Set[str] = set()

    def value_is_view(value: ast.expr) -> bool:
        if isinstance(value, ast.Call) and _dotted(value.func) == "memoryview":
            return True
        if isinstance(value, ast.Subscript) and isinstance(
            value.slice, ast.Slice
        ):
            target = value.value
            return isinstance(target, ast.Name) and target.id in views
        return False

    for _ in range(2):
        for inner in ast.walk(node):
            if not isinstance(inner, ast.Assign):
                continue
            for target in inner.targets:
                pairs: List[Tuple[ast.expr, ast.expr]] = []
                if isinstance(target, ast.Tuple) and isinstance(
                    inner.value, ast.Tuple
                ) and len(target.elts) == len(inner.value.elts):
                    pairs = list(zip(target.elts, inner.value.elts))
                else:
                    pairs = [(target, inner.value)]
                for dest, value in pairs:
                    if isinstance(dest, ast.Name) and value_is_view(value):
                        views.add(dest.id)
    return views


class _RuleWalker(ast.NodeVisitor):
    def __init__(self, file: _File, registry: _Registry, rules: Set[str]):
        self.file = file
        self.registry = registry
        self.findings: List[Finding] = []
        module = file.module
        self.check_blocking = "R001" in rules and module.startswith("repro.net")
        self.check_guards = "R002" in rules
        self.check_determinism = "R003" in rules and module.startswith(
            ("repro.sim", "repro.systems")
        )
        self.check_ledgers = "R004" in rules and module.startswith(
            "repro.datared"
        )
        self.check_excepts = "R005" in rules and (
            module.startswith("repro.net") or module == "repro.systems.server"
        )
        self.check_copies = "R006" in rules and module.startswith("repro")
        self.check_obs = (
            "R007" in rules
            and module.startswith(_R007_PACKAGES)
            and not module.endswith("__main__")
        )
        self.check_plugins = (
            "R008" in rules
            and module.startswith(_R008_PACKAGES)
            and module not in _R008_REGISTRY_MODULES
        )
        self.check_engine_factory = (
            "R009" in rules
            and module.startswith(_R009_PACKAGES)
            and module not in _R009_FACTORY_MODULES
        )
        self.check_lock_waits = "R010" in rules and module.startswith("repro")
        self.check_lock_ranks = "R011" in rules and module.startswith("repro")
        self.check_lifecycle = (
            "R012" in rules
            and module.startswith(_R012_PACKAGES)
            and module not in _R009_FACTORY_MODULES
        )
        self.name_based_guards = module.startswith("repro")
        self.class_stack: List[str] = []
        #: (function name, held guards, body-is-directly-async)
        self.func_stack: List[Tuple[str, Set[str], bool]] = []
        self.with_stack: List[str] = []
        #: parallel to func_stack: is this function (or an enclosing
        #: one) annotated hot-path?
        self.hot_stack: List[bool] = []
        #: parallel to func_stack: local names known to hold memoryviews
        #: (slicing those is zero-copy and never flagged).
        self.view_locals_stack: List[Set[str]] = []
        #: DisciplinedLock classes held via enclosing ``with`` scopes
        #: (R010/R011), innermost last.
        self.held_lock_classes: List[str] = []
        #: parallel to func_stack: lock classes resolved from ``holds``
        #: annotations on the enclosing ``def`` lines.
        self.lock_holds_stack: List[Set[str]] = []

    # -- helpers ----------------------------------------------------------
    def _emit(self, rule: str, node: ast.AST, message: str) -> None:
        self.findings.append(
            Finding(
                rule,
                self.file.path,
                getattr(node, "lineno", 1),
                getattr(node, "col_offset", 0),
                message,
            )
        )

    def _holds(self) -> Set[str]:
        held: Set[str] = set()
        for _, guards, _ in self.func_stack:
            held |= guards
        return held

    def _in_async(self) -> bool:
        return bool(self.func_stack) and self.func_stack[-1][2]

    def _current_function(self) -> Optional[str]:
        return self.func_stack[-1][0] if self.func_stack else None

    def _enter_function(
        self, node: Union[ast.FunctionDef, ast.AsyncFunctionDef], is_async: bool
    ) -> None:
        held: Set[str] = set()
        match = _HOLDS_RE.search(self.file.line(node.lineno))
        if match:
            held = {
                _normalize(token)
                for token in match.group(1).split(",")
                if token.strip() and token.strip() != "hot-path"
            }
        # The hot-path marker may sit on any signature line (multi-line
        # ``def``s carry it on the closing-paren line); hotness also
        # propagates into nested helpers.
        signature_end = max(
            node.body[0].lineno if node.body else node.lineno + 1,
            node.lineno + 1,
        )
        hot = bool(self.hot_stack and self.hot_stack[-1]) or any(
            _HOT_PATH_RE.search(self.file.line(number))
            for number in range(node.lineno, signature_end)
        )
        lock_holds: Set[str] = set()
        if self.check_lock_waits or self.check_lock_ranks:
            for token in held:
                resolved_lock = self._resolve_lock_token(token)
                if resolved_lock is not None:
                    lock_holds.add(resolved_lock)
        self.func_stack.append((node.name, held, is_async))
        self.hot_stack.append(hot)
        self.view_locals_stack.append(
            _view_locals(node) if (hot and self.check_copies) else set()
        )
        self.lock_holds_stack.append(lock_holds)
        if self.check_lifecycle:
            self._check_engine_lifecycle(node)
        self.generic_visit(node)
        self.func_stack.pop()
        self.hot_stack.pop()
        self.view_locals_stack.pop()
        self.lock_holds_stack.pop()

    # -- structure --------------------------------------------------------
    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self.class_stack.append(node.name)
        self.generic_visit(node)
        self.class_stack.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._enter_function(node, is_async=False)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._enter_function(node, is_async=True)

    def _visit_with(self, node: Union[ast.With, ast.AsyncWith]) -> None:
        contexts = []
        locks_pushed = 0
        for item in node.items:
            try:
                contexts.append(_normalize(ast.unparse(item.context_expr)))
            except Exception:  # pragma: no cover - unparse is total on 3.9+
                continue
            if self.check_lock_waits or self.check_lock_ranks:
                lock = self._resolve_lock_expr(item.context_expr, node.lineno)
                if lock is not None:
                    if self.check_lock_ranks:
                        self._check_rank_order(node, lock)
                    self.held_lock_classes.append(lock)
                    locks_pushed += 1
        self.with_stack.extend(contexts)
        self.generic_visit(node)
        del self.with_stack[len(self.with_stack) - len(contexts):]
        for _ in range(locks_pushed):
            self.held_lock_classes.pop()

    visit_With = _visit_with
    visit_AsyncWith = _visit_with

    # -- R010 / R011 ------------------------------------------------------
    def _resolve_lock_token(self, token: str) -> Optional[str]:
        """Lock class for a normalized ``holds`` guard token."""
        if token.startswith(("self.", "cls.")):
            attr = token.split(".", 1)[1].split(".", 1)[0]
            current = self.class_stack[-1] if self.class_stack else None
            return self.registry.resolve_lock_attr(current, attr)
        if "." not in token:
            by_name = self.registry.lock_names.get((self.file.module, token))
            if by_name is not None:
                return by_name
            if token in self.registry.lock_ranks:
                return token
        return None

    def _resolve_lock_expr(
        self, node: ast.expr, line_number: int
    ) -> Optional[str]:
        """Lock class for a ``with``-item context expression."""
        match = _LOCK_CLASS_RE.search(self.file.line(line_number))
        if match:
            self.registry.declare_lock_class(match.group(1), None)
            return match.group(1)
        ctor = _lock_ctor(node)
        if ctor is not None:
            return ctor[0]
        if isinstance(node, ast.Name):
            return self.registry.lock_names.get((self.file.module, node.id))
        if isinstance(node, ast.Attribute) and isinstance(
            node.value, ast.Name
        ):
            if node.value.id in ("self", "cls"):
                current = self.class_stack[-1] if self.class_stack else None
                return self.registry.resolve_lock_attr(current, node.attr)
        return None

    def _disciplined_held(self) -> Set[str]:
        held = set(self.held_lock_classes)
        for locks in self.lock_holds_stack:
            held |= locks
        return held

    def _check_rank_order(self, node: ast.stmt, acquiring: str) -> None:
        acquiring_rank = self.registry.lock_rank(acquiring)
        for held in sorted(self._disciplined_held()):
            if held == acquiring:
                continue  # reentrant same-class nesting: lockdep's job
            held_rank = self.registry.lock_rank(held)
            if (
                held_rank is not None
                and acquiring_rank is not None
                and held_rank >= acquiring_rank
            ):
                self._emit(
                    "R011",
                    node,
                    f"lock '{acquiring}' (rank {acquiring_rank}) acquired "
                    f"while '{held}' (rank {held_rank}) is held; the "
                    "declared LOCK_ORDER requires strictly increasing "
                    "ranks — acquire in rank order or split the critical "
                    "sections",
                )

    def _is_wait_call(self, node: ast.Call, name: Optional[str]) -> bool:
        if name is not None:
            if name in _R010_WAIT_CALLS or name.startswith(
                _R010_WAIT_PREFIXES
            ):
                return True
        if isinstance(node.func, ast.Attribute):
            receivers = _R010_ATTR_WAITS.get(node.func.attr)
            if receivers is not None:
                receiver = (_dotted(node.func.value) or "").lower()
                return not receivers or any(
                    hint in receiver for hint in receivers
                )
        return False

    # -- R012 -------------------------------------------------------------
    @staticmethod
    def _is_lifecycle_ctor(call: ast.Call) -> bool:
        callee = _dotted(call.func)
        if callee is None:
            return False
        return (
            callee.rsplit(".", 1)[-1] in _R012_CTOR_NAMES
            or callee.endswith("StorageServer.build")
        )

    def _check_engine_lifecycle(
        self, node: Union[ast.FunctionDef, ast.AsyncFunctionDef]
    ) -> None:
        """Flag engines/systems constructed in this scope and leaked.

        A local name bound to a lifecycle constructor must be closed
        (``.close()``/``.shutdown()``), context-managed, or have its
        ownership transferred (returned, yielded, or stored on an
        object attribute) within the same function scope.  Nested
        ``def``s are separate scopes and get their own walk.
        """
        created: Dict[str, ast.stmt] = {}
        released: Set[str] = set()
        for inner in _scope_nodes(node):
            if isinstance(inner, ast.Assign):
                if isinstance(inner.value, ast.Call) and self._is_lifecycle_ctor(
                    inner.value
                ):
                    for target in inner.targets:
                        if isinstance(target, ast.Name):
                            created.setdefault(target.id, inner)
                        elif isinstance(target, ast.Tuple):
                            for element in target.elts:
                                if isinstance(element, ast.Name):
                                    created.setdefault(element.id, inner)
                # Ownership transfer: the object now owns the value's
                # lifetime (``self.engine = engine``).
                if isinstance(inner.value, ast.Name) and any(
                    isinstance(target, ast.Attribute)
                    for target in inner.targets
                ):
                    released.add(inner.value.id)
            elif isinstance(inner, ast.Call):
                if (
                    isinstance(inner.func, ast.Attribute)
                    and inner.func.attr in _R012_CLOSERS
                    and isinstance(inner.func.value, ast.Name)
                ):
                    released.add(inner.func.value.id)
            elif isinstance(inner, (ast.Return, ast.Yield, ast.YieldFrom)):
                if inner.value is not None:
                    for leaf in ast.walk(inner.value):
                        if isinstance(leaf, ast.Name):
                            released.add(leaf.id)
            elif isinstance(inner, (ast.With, ast.AsyncWith)):
                for item in inner.items:
                    if isinstance(item.context_expr, ast.Name):
                        released.add(item.context_expr.id)
        for name, statement in created.items():
            if name in released:
                continue
            self._emit(
                "R012",
                statement,
                f"engine/system bound to '{name}' in '{node.name}' is "
                "never closed; use 'with ...:' or call "
                f"'{name}.close()' before the scope ends — a leaked "
                "engine never writes its final commit fence "
                "(DESIGN.md §5.10)",
            )

    # -- R006 -------------------------------------------------------------
    def _in_hot_path(self) -> bool:
        return bool(self.hot_stack) and self.hot_stack[-1]

    def _copy_ok(self, node: ast.AST) -> bool:
        return bool(
            _COPY_OK_RE.search(self.file.line(getattr(node, "lineno", 0)))
        )

    def _check_copy_call(self, node: ast.Call, name: Optional[str]) -> None:
        if name in {"bytes", "bytearray"} and node.args:
            what = f"{name}(...) materialization"
        elif (
            isinstance(node.func, ast.Attribute)
            and node.func.attr == "tobytes"
        ):
            what = ".tobytes() materialization"
        else:
            return
        if not self._copy_ok(node):
            self._emit(
                "R006",
                node,
                f"{what} inside hot-path function "
                f"'{self._current_function()}'; the zero-copy write path "
                "copies once at the container boundary — annotate a "
                "sanctioned copy '# repro-lint: copy-ok <reason>'",
            )

    def visit_Subscript(self, node: ast.Subscript) -> None:
        if (
            self.check_copies
            and self._in_hot_path()
            and isinstance(node.ctx, ast.Load)
            and isinstance(node.slice, ast.Slice)
        ):
            value = node.value
            is_view = (
                isinstance(value, ast.Name)
                and self.view_locals_stack
                and value.id in self.view_locals_stack[-1]
            ) or (
                isinstance(value, ast.Call)
                and _dotted(value.func) == "memoryview"
            )
            if not is_view and not self._copy_ok(node):
                self._emit(
                    "R006",
                    node,
                    "slice of a non-memoryview inside hot-path function "
                    f"'{self._current_function()}' copies its bytes; "
                    "slice a memoryview instead or annotate "
                    "'# repro-lint: copy-ok <reason>'",
                )
        self.generic_visit(node)

    # -- R001 / R003 ------------------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        name = _dotted(node.func)
        if self.check_copies and self._in_hot_path():
            self._check_copy_call(node, name)
        if name:
            if self.check_blocking and self._in_async():
                if name in _BLOCKING_CALLS or name.startswith(
                    _BLOCKING_PREFIXES
                ):
                    self._emit(
                        "R001",
                        node,
                        f"blocking call {name}() inside async def "
                        f"{self._current_function()}; move it to the "
                        "backend executor (run_in_executor)",
                    )
            if self.check_determinism:
                nondeterministic = name in _NONDETERMINISTIC_CALLS or (
                    name.startswith("random.") and name != "random.Random"
                )
                nondeterministic = nondeterministic or name.startswith(
                    _NONDETERMINISTIC_PREFIXES
                )
                if nondeterministic:
                    self._emit(
                        "R003",
                        node,
                        f"nondeterministic call {name}(); use the simulator "
                        "clock or an injected random.Random(seed)",
                    )
            if self.check_obs:
                if name in _R007_TIMING_CALLS:
                    self._emit(
                        "R007",
                        node,
                        f"ad-hoc timing call {name}() in the instrumented "
                        "path; record the duration through a repro.obs "
                        "span (trace.span/trace.observe) so the registry's "
                        "histograms and the STATS op see it",
                    )
                elif name == "print":
                    self._emit(
                        "R007",
                        node,
                        "print-style metric reporting in the instrumented "
                        "path; publish through the repro.obs.metrics "
                        "registry (counter/gauge/histogram) instead",
                    )
            if self.check_plugins and name not in _R008_ALLOWED:
                if name in _R008_BACKEND_CALLS or name.startswith(
                    _R008_BACKEND_PREFIXES
                ):
                    self._emit(
                        "R008",
                        node,
                        f"direct backend call {name}() outside the plugin "
                        "registries; route payload bytes through "
                        "repro.datared.codecs / repro.datared.hashing so "
                        "chunks carry their codec tag and the configured "
                        "plugins actually run",
                    )
            if (
                self.check_engine_factory
                and name.rsplit(".", 1)[-1] in _R009_ENGINE_NAMES
            ):
                self._emit(
                    "R009",
                    node,
                    f"direct {name}() construction in the serving layer; "
                    "build engines through "
                    "repro.systems.factory.build_engine so "
                    "SystemConfig.shards (and the factory's table/seal "
                    "wiring) decide the sharding",
                )
        if self.check_lock_waits and self._is_wait_call(node, name):
            held = self._disciplined_held()
            if held:
                what = name or (
                    "." + node.func.attr
                    if isinstance(node.func, ast.Attribute)
                    else "?"
                )
                self._emit(
                    "R010",
                    node,
                    f"blocking wait {what}() while holding "
                    f"{sorted(held)}; a parked owner stalls every thread "
                    "queued on the lock — move the wait outside the "
                    "critical section (DESIGN.md §5.8)",
                )
        if self.check_lock_ranks:
            ctor = _lock_ctor(node)
            if ctor is not None:
                lock_name, explicit_rank = ctor
                declared = explicit_rank
                if declared is None and lock_name is not None:
                    declared = self.registry.lock_rank(lock_name)
                if declared is None:
                    label = (
                        f"lock class '{lock_name}'"
                        if lock_name is not None
                        else "DisciplinedLock with a non-literal name"
                    )
                    self._emit(
                        "R011",
                        node,
                        f"{label} has no rank; register it in "
                        "repro.sync.LOCK_ORDER or pass rank= explicitly "
                        "so the lock hierarchy stays totally ordered",
                    )
        self.generic_visit(node)

    # -- R005 -------------------------------------------------------------
    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if self.check_excepts:
            if node.type is None:
                self._emit(
                    "R005",
                    node,
                    "bare except: catches SystemExit/KeyboardInterrupt; "
                    "name the exceptions (or ReproError)",
                )
            elif self._catches_broad(node.type) and self._body_is_silent(node):
                self._emit(
                    "R005",
                    node,
                    "except Exception with a pass-only body swallows "
                    "errors; map them to a protocol error or re-raise",
                )
        self.generic_visit(node)

    @staticmethod
    def _catches_broad(node: ast.expr) -> bool:
        names = []
        if isinstance(node, ast.Tuple):
            names = [_dotted(element) for element in node.elts]
        else:
            names = [_dotted(node)]
        return any(name in {"Exception", "BaseException"} for name in names)

    @staticmethod
    def _body_is_silent(node: ast.ExceptHandler) -> bool:
        for statement in node.body:
            if isinstance(statement, ast.Pass):
                continue
            if isinstance(statement, ast.Expr) and isinstance(
                statement.value, ast.Constant
            ):
                continue  # docstring / ellipsis
            return False
        return True

    # -- R002 / R004 ------------------------------------------------------
    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._check_store(target, node, node.value)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        floaty = _is_floaty(node.value) or isinstance(node.op, ast.Div)
        self._check_store(node.target, node, node.value, aug_floaty=floaty)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._check_store(node.target, node, node.value)
        self.generic_visit(node)

    def visit_Delete(self, node: ast.Delete) -> None:
        for target in node.targets:
            self._check_store(target, node, None)
        self.generic_visit(node)

    def _check_store(
        self,
        target: ast.expr,
        node: ast.stmt,
        value: Optional[ast.expr],
        aug_floaty: Optional[bool] = None,
    ) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._check_store(element, node, value, aug_floaty)
            return
        chain = _attr_chain(target)
        if self.check_ledgers and value is not None:
            self._check_ledger(target, chain, node, value, aug_floaty)
        if not self.check_guards or not self.func_stack:
            return
        if chain is None:
            return
        root, attrs = chain
        if root == "self" and self.class_stack:
            resolved = self.registry.resolve_guard(self.class_stack[-1], attrs[0])
            if resolved is not None:
                guard, declaring = resolved
                self._enforce_guard(node, attrs[0], guard, declaring)
                return
        # Ownership disciplines travel with the field name: a
        # ``single-writer`` field is single-writer no matter which
        # variable holds the object.
        if self.name_based_guards:
            entry = self.registry.discipline_fields.get(attrs[-1])
            if entry is not None:
                guard, module, class_name = entry
                if self._discipline_ok(guard, module, class_name):
                    return
                self._emit(
                    "R002",
                    node,
                    f"field '{attrs[-1]}' is guarded by '{guard}' "
                    f"(declared on {class_name} in {module}); mutate it "
                    "from the owning context or annotate the function "
                    f"'# repro-lint: holds {guard}'",
                )

    def _enforce_guard(
        self, node: ast.stmt, field_name: str, guard: str, declaring: str
    ) -> None:
        if not _is_lock_guard(guard):
            return  # self-stores in the hierarchy own the discipline
        function = self._current_function()
        if function in {"__init__", "__post_init__", "__new__"}:
            return  # construction is single-threaded by definition
        normalized = _normalize(guard)
        if normalized in self.with_stack or normalized in self._holds():
            return
        self._emit(
            "R002",
            node,
            f"field '{field_name}' is guarded by {guard} (declared on "
            f"{declaring}) but mutated without it; wrap the mutation in "
            f"'with {guard}:' or annotate the function "
            f"'# repro-lint: holds {guard}'",
        )

    def _discipline_ok(self, guard: str, module: str, class_name: str) -> bool:
        if self.file.module == module:
            return True
        if _normalize(guard) in self._holds():
            return True
        current = self.class_stack[-1] if self.class_stack else None
        return self.registry.is_descendant(current, class_name)

    def _check_ledger(
        self,
        target: ast.expr,
        chain: Optional[Tuple[str, List[str]]],
        node: ast.stmt,
        value: ast.expr,
        aug_floaty: Optional[bool],
    ) -> None:
        if chain is not None:
            name = chain[1][-1]
        elif isinstance(target, ast.Name):
            name = target.id
        else:
            return
        if not _COUNTER_RE.search(name):
            return
        floaty = aug_floaty if aug_floaty is not None else _is_floaty(value)
        if floaty:
            self._emit(
                "R004",
                node,
                f"float-tainted arithmetic assigned to ledger '{name}'; "
                "byte/chunk counters stay integral — derive ratios at "
                "report time instead",
            )


# ---------------------------------------------------------------------------
# Entry points
# ---------------------------------------------------------------------------


def _analyze(files: Sequence[_File], rules: Set[str]) -> List[Finding]:
    registry = _Registry()
    for file in files:
        _collect_classes(file, registry)
        _collect_locks(file, registry)
    findings: List[Finding] = []
    for file in files:
        if file.parse_error is not None:
            findings.append(file.parse_error)
            continue
        assert file.tree is not None
        walker = _RuleWalker(file, registry, rules)
        walker.visit(file.tree)
        findings.extend(
            finding
            for finding in walker.findings
            if not file.is_suppressed(finding)
        )
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings


def lint_source(
    source: str,
    *,
    module: str = "repro.fixture",
    path: str = "<string>",
    rules: Optional[Iterable[str]] = None,
) -> List[Finding]:
    """Lint one in-memory source blob (used by the rule unit tests)."""
    selected = set(rules) if rules is not None else set(RULES)
    return _analyze([_File(path, module, source)], selected)


def _iter_python_files(paths: Iterable[Union[str, Path]]) -> List[Path]:
    result: List[Path] = []
    for entry in paths:
        root = Path(entry)
        if root.is_dir():
            result.extend(
                candidate
                for candidate in sorted(root.rglob("*.py"))
                if "__pycache__" not in candidate.parts
                and not any(part.startswith(".") for part in candidate.parts)
            )
        elif root.suffix == ".py":
            result.append(root)
    return result


def lint_paths(
    paths: Iterable[Union[str, Path]],
    *,
    rules: Optional[Iterable[str]] = None,
) -> Tuple[List[Finding], int]:
    """Lint files/directories; returns ``(findings, files_scanned)``."""
    selected = set(rules) if rules is not None else set(RULES)
    files = [
        _File(str(path), _module_for_path(path), path.read_text())
        for path in _iter_python_files(paths)
    ]
    return _analyze(files, selected), len(files)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.lint",
        description="Concurrency/determinism contract linter (rules R001-R012).",
    )
    parser.add_argument("paths", nargs="*", help="files or directories to lint")
    parser.add_argument(
        "--select",
        default=None,
        help="comma-separated rule subset (default: all rules)",
    )
    parser.add_argument(
        "--json", dest="json_path", default=None, help="write a JSON report"
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule table and exit"
    )
    options = parser.parse_args(argv)

    if options.list_rules:
        for rule, summary in sorted(RULES.items()):
            print(f"{rule}  {summary}")
        return 0
    if not options.paths:
        parser.error("no paths given (try: src/ tests/)")

    rules = (
        {token.strip() for token in options.select.split(",") if token.strip()}
        if options.select
        else None
    )
    findings, files_scanned = lint_paths(options.paths, rules=rules)
    for finding in findings:
        print(finding.format())
    if options.json_path:
        report = {
            "tool": "repro-lint",
            "rules": RULES,
            "files_scanned": files_scanned,
            "findings": [finding.as_dict() for finding in findings],
        }
        Path(options.json_path).write_text(json.dumps(report, indent=2) + "\n")
    status = "FAIL" if findings else "OK"
    print(
        f"repro-lint: {files_scanned} file(s), {len(findings)} finding(s) "
        f"[{status}]"
    )
    return 1 if findings else 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI tests
    sys.exit(main())

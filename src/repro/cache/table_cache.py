"""The Hash-PBN table cache (paper §2.1.3, §4.3, §5.5).

Only a small slice of the multi-TB Hash-PBN table fits in host DRAM; the
rest lives on dedicated *table SSDs*.  :class:`TableCache` is the cached
bucket store both systems share functionally — it implements the
:class:`~repro.datared.hash_pbn.BucketStore` interface, so a
:class:`~repro.datared.hash_pbn.HashPbnTable` layered on top transparently
runs through the cache.

What differs between the baseline and FIDR is *where the cache machinery
runs*, not what it does:

* baseline — the CPU walks a software B+-tree index, manages the free
  list and LRU, and drives the table-SSD IO stack (Table 2's overheads);
* FIDR — tree indexing, free-list handling and table-SSD queues move to
  the Cache HW-Engine; the CPU only scans cached bucket *content* in
  host memory (§5.5).

Both variants use this class; the system layers charge the per-event
costs (CPU cycles, DRAM bytes, SSD transfers) to different devices using
the :class:`CacheStats` event counts it maintains.

Packed-index interplay (DESIGN.md §5.9): the cache implements only the
byte-page half of the :class:`~repro.datared.hash_pbn.BucketStore`
interface, so a packed table running over it uses the inherited
``load_packed``/``store_packed`` defaults — every bucket access still
flows through :meth:`read_bucket`/:meth:`write_bucket` and the
:class:`CacheStats` counts (hence the calibrated device charges) are
bit-for-bit what the legacy decoded path produced.  What changes is
only the CPU-side cost of one access: wrapping the 4-KB page in a
:class:`~repro.datared.hash_pbn.PackedBucket` cursor replaces the
per-entry decode into tuple lists.  The table's *negative filter* and
*batched resolve* stay off over this store (the auto rule keys on
private in-memory stores) precisely because they would elide bucket
accesses the device models are calibrated to observe.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Protocol, Set

from ..datared.hash_pbn import BUCKET_SIZE, BucketStore
from .btree import BPlusTree
from .freelist import CircularFreeList
from .hwtree import SpeculativeTreeEngine, TreeOp
from .lru import LruList

__all__ = ["CacheIndex", "BTreeIndex", "HwTreeIndex", "CacheStats", "TableCache"]


class CacheIndex(Protocol):
    """Index mapping bucket index → cache-line slot."""

    def search(self, bucket: int) -> Optional[int]: ...

    def insert(self, bucket: int, slot: int) -> None: ...

    def delete(self, bucket: int) -> None: ...


class BTreeIndex:
    """Baseline: software B+-tree walked by the CPU (§7.1)."""

    def __init__(self, order: int = 16):
        self.tree = BPlusTree(order=order)
        self.searches = 0
        self.updates = 0

    def search(self, bucket: int) -> Optional[int]:
        self.searches += 1
        return self.tree.search(bucket)

    def insert(self, bucket: int, slot: int) -> None:
        self.updates += 1
        self.tree.insert(bucket, slot)

    def delete(self, bucket: int) -> None:
        self.updates += 1
        self.tree.delete(bucket)

    @property
    def node_visits(self) -> int:
        """Tree nodes touched — the CPU cycle driver (Table 2)."""
        return self.tree.node_visits


class HwTreeIndex:
    """FIDR: the Cache HW-Engine's speculative pipelined tree (§5.5.1)."""

    def __init__(self, window: int = 4):
        self.engine = SpeculativeTreeEngine(window=window)
        self.searches = 0
        self.updates = 0

    def search(self, bucket: int) -> Optional[int]:
        self.searches += 1
        return self.engine.search(bucket)

    def insert(self, bucket: int, slot: int) -> None:
        self.updates += 1
        self.engine.execute([TreeOp("insert", bucket, slot)])

    def delete(self, bucket: int) -> None:
        self.updates += 1
        self.engine.execute([TreeOp("delete", bucket)])

    def execute_batch(self, ops: List[TreeOp]) -> None:
        """Concurrent batch path (the engine's real operating mode)."""
        self.updates += len(ops)
        self.engine.execute(ops)


@dataclass
class CacheStats:
    """Event counts for one table cache; units noted per field."""

    hits: int = 0
    misses: int = 0
    fetches: int = 0  #: bucket pages read from table SSD
    flushes: int = 0  #: dirty pages written back to table SSD
    evictions: int = 0
    content_scans: int = 0  #: cached bucket pages scanned by the host
    warm_hits: int = 0  #: re-accesses served from the CPU cache
    host_bytes_read: int = 0  #: DRAM reads for content scans / flushes
    host_bytes_written: int = 0  #: DRAM writes for fetches / dirty updates

    @property
    def accesses(self) -> int:
        """All table accesses, including CPU-cache-warm re-accesses
        (a lookup-then-insert pair is two table accesses, as the paper
        counts them — the second just costs no DRAM traffic)."""
        return self.hits + self.warm_hits + self.misses

    @property
    def hit_rate(self) -> float:
        if not self.accesses:
            return 0.0
        return (self.hits + self.warm_hits) / self.accesses


class TableCache(BucketStore):
    """Write-back, LRU bucket cache over a table-SSD bucket store."""

    def __init__(
        self,
        backing: BucketStore,
        capacity_lines: int,
        index: Optional[CacheIndex] = None,
        eviction_batch: int = 8,
        lru: Optional[LruList] = None,
    ):
        """``lru`` injects a replacement policy; anything API-compatible
        with :class:`~repro.cache.lru.LruList` works — e.g. the
        tenant-aware :class:`~repro.cache.policy.PartitionedLru` (§8)."""
        if capacity_lines < 1:
            raise ValueError("cache needs at least one line")
        if not 1 <= eviction_batch <= capacity_lines:
            raise ValueError("eviction batch must be in [1, capacity]")
        self.backing = backing
        self.capacity_lines = capacity_lines
        self.index = index if index is not None else BTreeIndex()
        self.eviction_batch = eviction_batch
        self.stats = CacheStats()
        self._lines: List[Optional[bytes]] = [None] * capacity_lines
        self._line_bucket: List[Optional[int]] = [None] * capacity_lines
        self._free = CircularFreeList.full(capacity_lines)
        self._lru = lru if lru is not None else LruList()
        self._dirty: Set[int] = set()  # bucket indexes with unflushed writes
        # Mirror of bucket → slot for internal bookkeeping.  This is NOT
        # the modelled index (that is ``self.index``, whose walks are
        # what the CPU/engine pay for) — it only keeps the Python
        # implementation O(1).
        self._resident: Dict[int, int] = {}
        # The bucket touched by the immediately preceding access: a
        # lookup-then-insert pair hits the same page while it is still in
        # the CPU's caches, so the second access costs neither a DRAM
        # scan nor a fresh index walk.
        self._warm_bucket: Optional[int] = None

    #: DRAM burst charged for an in-place entry update of a cached page
    #: (inserting one 38-byte entry dirties one cache line, not 4 KB).
    IN_PLACE_WRITE_BYTES = 64

    # -- BucketStore interface -------------------------------------------------------
    def read_bucket(self, bucket: int) -> bytes:
        if bucket == self._warm_bucket:
            # Back-to-back access to the same page (lookup-then-insert):
            # served from the CPU cache, no DRAM or index traffic.
            slot = self._slot_of(bucket)
            if slot is not None:
                self.stats.warm_hits += 1
                page = self._lines[slot]
                assert page is not None
                return page
        slot = self.index.search(bucket)
        if slot is not None:
            self.stats.hits += 1
            self._lru.touch(bucket)
        else:
            self.stats.misses += 1
            slot = self._install(bucket, self.backing.read_bucket(bucket))
            self.stats.fetches += 1
        # The host scans the cached content for dedup detection (§5.3 #5).
        self.stats.content_scans += 1
        self.stats.host_bytes_read += BUCKET_SIZE
        self._warm_bucket = bucket
        page = self._lines[slot]
        assert page is not None
        return page

    def write_bucket(self, bucket: int, page: bytes) -> None:
        if len(page) != BUCKET_SIZE:
            raise ValueError("bucket pages must be 4 KB")
        if bucket == self._warm_bucket:
            slot = self._slot_of(bucket)
            if slot is not None:
                # In-place update of the page just examined: one dirty
                # cache line, no index walk.  Not counted as a table
                # access — it is the tail of the same logical operation
                # whose read was already counted.
                self._lines[slot] = page
                self.stats.host_bytes_written += self.IN_PLACE_WRITE_BYTES
                self._dirty.add(bucket)
                return
        slot = self.index.search(bucket)
        if slot is None:
            self.stats.misses += 1
            slot = self._install(bucket, page)
        else:
            self.stats.hits += 1
            self._lines[slot] = page
            self._lru.touch(bucket)
            self.stats.host_bytes_written += self.IN_PLACE_WRITE_BYTES
        self._warm_bucket = bucket
        self._dirty.add(bucket)

    def _slot_of(self, bucket: int) -> Optional[int]:
        """Slot of a resident bucket without touching index stats."""
        return self._resident.get(bucket)

    # -- internals ---------------------------------------------------------------------
    def _install(self, bucket: int, page: bytes) -> int:
        if self._free.is_empty:
            self._evict_batch()
        slot = self._free.pop()
        self._lines[slot] = page
        self._line_bucket[slot] = bucket
        self._resident[bucket] = slot
        self.index.insert(bucket, slot)
        self._lru.touch(bucket)
        # The fetched page lands in host memory.
        self.stats.host_bytes_written += BUCKET_SIZE
        return slot

    def _evict_batch(self) -> None:
        """Evict the coldest lines (batched, §5.5's LRU-batch protocol)."""
        victims = self._lru.evict_batch(self.eviction_batch)
        if not victims:
            raise RuntimeError("cache full of pinned lines; cannot evict")
        for bucket in victims:
            slot = self.index.search(bucket)
            assert slot is not None, "LRU and index disagree"
            if bucket in self._dirty:
                page = self._lines[slot]
                assert page is not None
                self.backing.write_bucket(bucket, page)
                self._dirty.discard(bucket)
                self.stats.flushes += 1
                self.stats.host_bytes_read += BUCKET_SIZE
            self.index.delete(bucket)
            self._lines[slot] = None
            self._line_bucket[slot] = None
            del self._resident[bucket]
            if self._warm_bucket == bucket:
                self._warm_bucket = None
            self._free.push(slot)
            self.stats.evictions += 1

    # -- maintenance ------------------------------------------------------------------------
    def flush_all(self) -> int:
        """Write every dirty line back to the table SSD (shutdown)."""
        flushed = 0
        for bucket in sorted(self._dirty):
            slot = self.index.search(bucket)
            assert slot is not None
            page = self._lines[slot]
            assert page is not None
            self.backing.write_bucket(bucket, page)
            self.stats.flushes += 1
            self.stats.host_bytes_read += BUCKET_SIZE
            flushed += 1
        self._dirty.clear()
        return flushed

    @property
    def resident_lines(self) -> int:
        return self.capacity_lines - len(self._free)

    def check_invariants(self) -> None:
        """Structural consistency between index, LRU, lines and free list."""
        resident = {
            bucket
            for bucket in self._line_bucket
            if bucket is not None
        }
        lru_keys = set(self._lru.keys_hot_to_cold())
        assert resident == lru_keys, "LRU tracks a different resident set"
        assert self._dirty <= resident, "dirty bucket not resident"
        assert len(resident) + len(self._free) == self.capacity_lines
        for slot, bucket in enumerate(self._line_bucket):
            if bucket is not None:
                assert self.index.search(bucket) == slot, "index mismatch"

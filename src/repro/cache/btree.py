"""Software B+-tree — the baseline's table-cache index (paper §7.1).

The baseline (CIDR extended with software table caching) maps Hash-PBN
bucket indexes to cache-line slots with "an open-source high performing
B+ tree" based on Intel PALM.  This module provides an equivalent
in-memory B+-tree with:

* insert / delete / search / in-order iteration,
* node-visit accounting — the CPU cost model charges cycles per node
  visited, which is what makes tree indexing the dominant table-caching
  cost in Table 2 (43.9% of CPU),
* a geometry that mirrors the hardware tree's (branching factor per
  level), so the software and hardware indexes are directly comparable.

Correctness is validated against a dict model under randomized operation
sequences in the test suite.
"""

from __future__ import annotations

from typing import Any, Iterator, List, Optional, Tuple

__all__ = ["BPlusTree"]


class _Node:
    __slots__ = ("keys", "children", "values", "next_leaf", "is_leaf")

    def __init__(self, is_leaf: bool):
        self.is_leaf = is_leaf
        self.keys: List[int] = []
        self.children: List["_Node"] = []  # internal nodes only
        self.values: List[Any] = []  # leaves only
        self.next_leaf: Optional["_Node"] = None  # leaf chain


class BPlusTree:
    """B+-tree keyed by integers (bucket indexes) with leaf chaining.

    ``order`` is the maximum number of keys per node (fan-out - 1 for
    internal nodes).  Nodes split at ``order + 1`` keys and rebalance
    below ``ceil(order / 2)`` keys.
    """

    def __init__(self, order: int = 16):
        if order < 3:
            raise ValueError(f"order must be >= 3, got {order}")
        self.order = order
        self._root = _Node(is_leaf=True)
        self._size = 0
        #: Total tree nodes touched by all operations — the unit the CPU
        #: model charges cycles against (Table 2 "tree indexing").
        self.node_visits = 0

    # -- invariant thresholds -------------------------------------------------
    @property
    def _min_keys(self) -> int:
        return (self.order + 1) // 2

    # -- search -----------------------------------------------------------------
    def _find_leaf(self, key: int) -> Tuple[_Node, List[Tuple[_Node, int]]]:
        """Descend to the leaf for ``key``; returns (leaf, path).

        ``path`` holds (internal node, child slot) pairs root-first.
        """
        node = self._root
        path: List[Tuple[_Node, int]] = []
        while not node.is_leaf:
            self.node_visits += 1
            slot = self._child_slot(node, key)
            path.append((node, slot))
            node = node.children[slot]
        self.node_visits += 1
        return node, path

    @staticmethod
    def _child_slot(node: _Node, key: int) -> int:
        slot = 0
        while slot < len(node.keys) and key >= node.keys[slot]:
            slot += 1
        return slot

    def search(self, key: int) -> Optional[Any]:
        """Return the value for ``key`` or None."""
        leaf, _ = self._find_leaf(key)
        for position, stored in enumerate(leaf.keys):
            if stored == key:
                return leaf.values[position]
        return None

    def __contains__(self, key: int) -> bool:
        return self.search(key) is not None

    # -- insert -----------------------------------------------------------------
    def insert(self, key: int, value: Any) -> None:
        """Insert or overwrite ``key``."""
        if value is None:
            raise ValueError("None values are indistinguishable from misses")
        leaf, path = self._find_leaf(key)
        for position, stored in enumerate(leaf.keys):
            if stored == key:
                leaf.values[position] = value
                return
        position = self._child_slot(leaf, key)
        leaf.keys.insert(position, key)
        leaf.values.insert(position, value)
        self._size += 1
        if len(leaf.keys) > self.order:
            self._split(leaf, path)

    def _split(self, node: _Node, path: List[Tuple[_Node, int]]) -> None:
        middle = len(node.keys) // 2
        sibling = _Node(is_leaf=node.is_leaf)
        if node.is_leaf:
            sibling.keys = node.keys[middle:]
            sibling.values = node.values[middle:]
            node.keys = node.keys[:middle]
            node.values = node.values[:middle]
            sibling.next_leaf = node.next_leaf
            node.next_leaf = sibling
            separator = sibling.keys[0]
        else:
            separator = node.keys[middle]
            sibling.keys = node.keys[middle + 1 :]
            sibling.children = node.children[middle + 1 :]
            node.keys = node.keys[:middle]
            node.children = node.children[: middle + 1]

        if not path:
            new_root = _Node(is_leaf=False)
            new_root.keys = [separator]
            new_root.children = [node, sibling]
            self._root = new_root
            return
        parent, slot = path[-1]
        parent.keys.insert(slot, separator)
        parent.children.insert(slot + 1, sibling)
        if len(parent.keys) > self.order:
            self._split(parent, path[:-1])

    # -- delete -----------------------------------------------------------------
    def delete(self, key: int) -> bool:
        """Remove ``key``; returns whether it was present."""
        leaf, path = self._find_leaf(key)
        for position, stored in enumerate(leaf.keys):
            if stored == key:
                del leaf.keys[position]
                del leaf.values[position]
                self._size -= 1
                self._rebalance(leaf, path)
                return True
        return False

    def _rebalance(self, node: _Node, path: List[Tuple[_Node, int]]) -> None:
        if not path:
            # Root: collapse when an internal root has a single child.
            if not self._root.is_leaf and len(self._root.children) == 1:
                self._root = self._root.children[0]
            return
        minimum = self._min_keys
        if node.is_leaf:
            if len(node.keys) >= minimum:
                return
        elif len(node.children) >= minimum:
            return

        parent, slot = path[-1]
        left = parent.children[slot - 1] if slot > 0 else None
        right = parent.children[slot + 1] if slot + 1 < len(parent.children) else None

        if left is not None and self._can_lend(left):
            self._borrow_from_left(node, left, parent, slot)
        elif right is not None and self._can_lend(right):
            self._borrow_from_right(node, right, parent, slot)
        elif left is not None:
            self._merge(left, node, parent, slot - 1)
            self._rebalance(parent, path[:-1])
        else:
            self._merge(node, right, parent, slot)
            self._rebalance(parent, path[:-1])

    def _can_lend(self, node: _Node) -> bool:
        if node.is_leaf:
            return len(node.keys) > self._min_keys
        return len(node.children) > self._min_keys

    def _borrow_from_left(
        self, node: _Node, left: _Node, parent: _Node, slot: int
    ) -> None:
        if node.is_leaf:
            node.keys.insert(0, left.keys.pop())
            node.values.insert(0, left.values.pop())
            parent.keys[slot - 1] = node.keys[0]
        else:
            node.keys.insert(0, parent.keys[slot - 1])
            parent.keys[slot - 1] = left.keys.pop()
            node.children.insert(0, left.children.pop())

    def _borrow_from_right(
        self, node: _Node, right: _Node, parent: _Node, slot: int
    ) -> None:
        if node.is_leaf:
            node.keys.append(right.keys.pop(0))
            node.values.append(right.values.pop(0))
            parent.keys[slot] = right.keys[0]
        else:
            node.keys.append(parent.keys[slot])
            parent.keys[slot] = right.keys.pop(0)
            node.children.append(right.children.pop(0))

    def _merge(self, left: _Node, right: _Node, parent: _Node, sep_slot: int) -> None:
        """Fold ``right`` into ``left``; removes the separator at sep_slot."""
        if left.is_leaf:
            left.keys.extend(right.keys)
            left.values.extend(right.values)
            left.next_leaf = right.next_leaf
        else:
            left.keys.append(parent.keys[sep_slot])
            left.keys.extend(right.keys)
            left.children.extend(right.children)
        del parent.keys[sep_slot]
        del parent.children[sep_slot + 1]

    # -- iteration / introspection ---------------------------------------------------
    def items(self) -> Iterator[Tuple[int, Any]]:
        """All (key, value) pairs in key order via the leaf chain."""
        node = self._root
        while not node.is_leaf:
            node = node.children[0]
        while node is not None:
            for key, value in zip(node.keys, node.values):
                yield key, value
            node = node.next_leaf

    def __len__(self) -> int:
        return self._size

    @property
    def height(self) -> int:
        """Number of levels (1 = a lone leaf)."""
        levels, node = 1, self._root
        while not node.is_leaf:
            levels += 1
            node = node.children[0]
        return levels

    def check_invariants(self) -> None:
        """Raise AssertionError if any structural invariant is broken.

        Used by the property-based tests after every operation batch.
        """
        size = sum(1 for _ in self.items())
        assert size == self._size, f"size {self._size} != iterated {size}"
        keys = [key for key, _ in self.items()]
        assert keys == sorted(set(keys)), "leaf chain out of order"
        self._check_node(self._root, is_root=True)

    def _check_node(self, node: _Node, is_root: bool = False) -> Tuple[int, int]:
        """Returns (min_key, height) of the subtree; asserts invariants."""
        if node.is_leaf:
            assert len(node.keys) == len(node.values)
            if not is_root:
                assert len(node.keys) >= self._min_keys, "leaf underflow"
            assert len(node.keys) <= self.order, "leaf overflow"
            return (node.keys[0] if node.keys else -1, 1)
        assert len(node.children) == len(node.keys) + 1
        if not is_root:
            assert len(node.children) >= self._min_keys, "internal underflow"
        assert len(node.keys) <= self.order, "internal overflow"
        heights = set()
        for position, child in enumerate(node.children):
            min_key, child_height = self._check_node(child)
            heights.add(child_height)
            if position > 0:
                assert min_key >= node.keys[position - 1], "separator violated"
        assert len(heights) == 1, "unbalanced subtree heights"
        first_min, height = self._check_node(node.children[0])
        return first_min, height + 1

"""Circular-buffer free list for table-cache lines (paper §6.3).

The FIDR Cache HW-Engine keeps the free list of cache-line slots as a
circular buffer in FPGA-board DRAM: accesses are strictly sequential, so
one wide DDR burst returns many entries ("negligible DRAM access
overhead").  This class reproduces those semantics — bounded capacity,
FIFO order, and an access counter in DDR-burst units so the engine model
can account board-DRAM bandwidth.
"""

from __future__ import annotations

from typing import List, Optional

__all__ = ["CircularFreeList"]


class CircularFreeList:
    """Bounded FIFO of free cache-line indexes over a ring buffer."""

    #: Free-list entries per 512-bit DDR burst (4-byte slot indexes).
    ENTRIES_PER_BURST = 16

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._ring: List[Optional[int]] = [None] * capacity
        self._head = 0  # next pop position
        self._tail = 0  # next push position
        self._count = 0
        self.ddr_bursts = 0
        self._burst_budget = 0  # entries prefetched by the last burst

    @classmethod
    def full(cls, capacity: int) -> "CircularFreeList":
        """A free list pre-loaded with slots ``0..capacity-1`` (boot state)."""
        free_list = cls(capacity)
        for slot in range(capacity):
            free_list.push(slot)
        return free_list

    def push(self, slot: int) -> None:
        """Return a freed cache-line slot to the list."""
        if self._count >= self.capacity:
            raise OverflowError("free list is full")
        if slot < 0:
            raise ValueError(f"negative slot {slot}")
        self._ring[self._tail] = slot
        self._tail = (self._tail + 1) % self.capacity
        self._count += 1

    def pop(self) -> int:
        """Take the oldest free slot; accounts a DDR burst per 16 pops."""
        if self._count == 0:
            raise IndexError("free list is empty")
        if self._burst_budget == 0:
            self.ddr_bursts += 1
            self._burst_budget = self.ENTRIES_PER_BURST
        self._burst_budget -= 1
        slot = self._ring[self._head]
        self._ring[self._head] = None
        self._head = (self._head + 1) % self.capacity
        self._count -= 1
        assert slot is not None
        return slot

    def __len__(self) -> int:
        return self._count

    @property
    def is_empty(self) -> bool:
        return self._count == 0

    @property
    def is_full(self) -> bool:
        return self._count >= self.capacity

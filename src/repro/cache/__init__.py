"""Table-cache subsystem: indexes, replacement machinery, and the
Cache HW-Engine models (paper §4.3, §5.5, §6.3)."""

from .btree import BPlusTree
from .cache_engine import (
    CacheEngineConfig,
    CacheEngineModel,
    CycleSimResult,
    ThroughputBreakdown,
)
from .freelist import CircularFreeList
from .hwtree import OpResult, SpeculativeTreeEngine, TreeOp
from .lru import LruList
from .policy import PartitionedLru
from .table_cache import BTreeIndex, CacheIndex, CacheStats, HwTreeIndex, TableCache

__all__ = [
    "BPlusTree",
    "BTreeIndex",
    "CacheEngineConfig",
    "CacheEngineModel",
    "CacheIndex",
    "CacheStats",
    "CircularFreeList",
    "CycleSimResult",
    "HwTreeIndex",
    "LruList",
    "PartitionedLru",
    "OpResult",
    "SpeculativeTreeEngine",
    "TableCache",
    "ThroughputBreakdown",
    "TreeOp",
]

"""LRU recency list for the table cache (paper §5.5).

The host software touches cached buckets, so the LRU list lives host-side;
the Cache HW-Engine "periodically receives batches of top LRU list items
for deletions".  :class:`LruList` supports exactly that protocol: O(1)
touch/insert/remove plus :meth:`evict_batch` returning the coldest *n*
keys in one shot.

Implemented as the classic doubly-linked list + dict, with an optional
pin set so in-flight cache lines cannot be evicted underneath a scan.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Set

__all__ = ["LruList"]


class _Link:
    __slots__ = ("key", "prev", "next")

    def __init__(self, key):
        self.key = key
        self.prev: Optional["_Link"] = None
        self.next: Optional["_Link"] = None


class LruList:
    """Recency ordering over hashable keys; head = hottest, tail = coldest."""

    def __init__(self):
        self._links: Dict = {}
        self._head: Optional[_Link] = None
        self._tail: Optional[_Link] = None
        self._pinned: Set = set()

    # -- linked-list plumbing ---------------------------------------------------
    def _unlink(self, link: _Link) -> None:
        if link.prev is not None:
            link.prev.next = link.next
        else:
            self._head = link.next
        if link.next is not None:
            link.next.prev = link.prev
        else:
            self._tail = link.prev
        link.prev = link.next = None

    def _push_front(self, link: _Link) -> None:
        link.next = self._head
        link.prev = None
        if self._head is not None:
            self._head.prev = link
        self._head = link
        if self._tail is None:
            self._tail = link

    # -- public API -----------------------------------------------------------------
    def touch(self, key) -> None:
        """Mark ``key`` most-recently-used, inserting it if new."""
        link = self._links.get(key)
        if link is None:
            link = _Link(key)
            self._links[key] = link
        else:
            self._unlink(link)
        self._push_front(link)

    def remove(self, key) -> bool:
        """Drop ``key`` from the list; returns whether it was present."""
        link = self._links.pop(key, None)
        if link is None:
            return False
        self._unlink(link)
        self._pinned.discard(key)
        return True

    def pin(self, key) -> None:
        """Protect ``key`` from eviction (line has IO in flight)."""
        if key not in self._links:
            raise KeyError(f"{key!r} not tracked")
        self._pinned.add(key)

    def unpin(self, key) -> None:
        self._pinned.discard(key)

    def coldest(self) -> Optional[object]:
        """The least-recently-used unpinned key, or None."""
        link = self._tail
        while link is not None and link.key in self._pinned:
            link = link.prev
        return link.key if link is not None else None

    def evict_batch(self, count: int) -> List:
        """Remove and return up to ``count`` coldest unpinned keys.

        This is the batch the host ships to the Cache HW-Engine (§5.5):
        batching amortizes the host↔engine interaction.
        """
        if count < 0:
            raise ValueError("count must be non-negative")
        victims: List = []
        link = self._tail
        while link is not None and len(victims) < count:
            previous = link.prev
            if link.key not in self._pinned:
                victims.append(link.key)
                self._unlink(link)
                del self._links[link.key]
            link = previous
        return victims

    def __contains__(self, key) -> bool:
        return key in self._links

    def __len__(self) -> int:
        return len(self._links)

    def keys_hot_to_cold(self) -> Iterator:
        """All keys from most- to least-recently used (for tests)."""
        link = self._head
        while link is not None:
            yield link.key
            link = link.next

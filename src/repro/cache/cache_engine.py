"""Timing model of the FIDR Cache HW-Engine (§5.5, §6.3, Figure 13).

The engine's throughput is governed by four mechanisms, each modelled
explicitly so Figure 13's regimes emerge rather than being tabulated:

1. **Search pipeline** — one lookup issues per clock; non-leaf levels sit
   in single-cycle on-chip memory (§6.3's 16-key leaf trick keeps all
   non-leaf levels on chip).
2. **Board-DRAM bandwidth** — only the leaf level lives in FPGA DRAM;
   every search reads one leaf node and every update writes one back.
   High-hit-rate workloads (Write-H) saturate here (~127 GB/s in the
   paper).
3. **Update concurrency window** — an update occupies a speculation slot
   for the full tree latency (on-chip levels + a DRAM leaf access).  With
   a single slot the engine is latency-bound (Write-M's 27.1 GB/s); the
   crash/replay optimization allows up to 4 slots.
4. **Commit serialization** — the crash/replay controller retires updates
   in order through a single tree-write port, which bounds the benefit of
   very large windows (Write-M saturates near 63.8 GB/s).

Misses additionally fetch the 4-KB bucket from a table SSD, which is the
dominant cap when table SSD bandwidth is small (Table 5's "All" column:
10 GB/s with a 2 GB/s table SSD).

Two entry points:

* :meth:`CacheEngineModel.analytic_throughput` — closed-form steady-state
  caps (fast; used by the system-level solver),
* :meth:`CacheEngineModel.simulate` — a queueing simulation that also
  measures the emergent crash/replay rate from actual leaf collisions.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional

__all__ = ["CacheEngineConfig", "ThroughputBreakdown", "CycleSimResult", "CacheEngineModel"]


@dataclass(frozen=True)
class CacheEngineConfig:
    """Physical parameters of one Cache HW-Engine.

    Defaults are calibrated to the paper's prototype (VCU1525, §6.3):
    see DESIGN.md §4 for the fit points.
    """

    clock_hz: float = 250e6  #: FPGA fabric clock
    on_chip_levels: int = 8  #: tree levels in BRAM/URAM (1 cycle each)
    dram_latency_cycles: int = 92  #: leaf access round-trip in cycles
    commit_cycles: int = 40  #: in-order retire cost per update
    leaf_node_bytes: int = 512  #: 16-key leaf node line in board DRAM
    board_dram_bw: float = 19.2e9  #: one DDR4-2400 channel, bytes/s
    table_ssd_read_bw: Optional[float] = None  #: None = miss fetches uncapped
    chunk_size: int = 4096  #: data bytes represented by one request
    updates_per_miss: float = 2.0  #: insert fetched line + delete victim

    @property
    def update_latency_cycles(self) -> int:
        """Slot occupancy of one update: pipeline walk + DRAM leaf access."""
        return self.on_chip_levels + self.dram_latency_cycles


@dataclass
class ThroughputBreakdown:
    """Analytic caps in data-reduction bytes/s; the minimum binds."""

    caps: Dict[str, float]

    @property
    def throughput(self) -> float:
        return min(self.caps.values())

    @property
    def bottleneck(self) -> str:
        return min(self.caps, key=self.caps.get)


@dataclass
class CycleSimResult:
    """Outcome of the queueing simulation."""

    requests: int
    cycles: float
    throughput_bytes_per_s: float
    crashes: int
    updates: int

    @property
    def crash_rate(self) -> float:
        attempts = self.updates + self.crashes
        return self.crashes / attempts if attempts else 0.0


class CacheEngineModel:
    """Throughput model for one Cache HW-Engine instance."""

    def __init__(self, config: Optional[CacheEngineConfig] = None):
        self.config = config if config is not None else CacheEngineConfig()

    # -- analytic steady state ------------------------------------------------------
    def analytic_throughput(self, miss_rate: float, window: int = 4) -> ThroughputBreakdown:
        """Steady-state caps for a workload with the given table-cache
        miss rate and speculation window."""
        if not 0.0 <= miss_rate <= 1.0:
            raise ValueError(f"miss_rate must be in [0, 1], got {miss_rate}")
        if window < 1:
            raise ValueError("window must be >= 1")
        cfg = self.config
        updates_per_request = miss_rate * cfg.updates_per_miss

        caps: Dict[str, float] = {}
        # 1. Search pipeline: one request per clock.
        caps["search_pipeline"] = cfg.clock_hz * cfg.chunk_size
        # 2. Board DRAM: one leaf read per search + one leaf write per update.
        dram_bytes_per_request = cfg.leaf_node_bytes * (1.0 + updates_per_request)
        caps["board_dram"] = cfg.board_dram_bw / dram_bytes_per_request * cfg.chunk_size
        # 3/4. Update path: window-limited in-flight + in-order commit.
        if updates_per_request > 0:
            per_update_cycles = max(
                cfg.update_latency_cycles / window, cfg.commit_cycles
            )
            updates_per_second = cfg.clock_hz / per_update_cycles
            caps["update_path"] = (
                updates_per_second / updates_per_request * cfg.chunk_size
            )
        # 5. Table SSD: each miss fetches one 4-KB bucket.
        if cfg.table_ssd_read_bw is not None and miss_rate > 0:
            caps["table_ssd"] = cfg.table_ssd_read_bw / miss_rate
        return ThroughputBreakdown(caps=caps)

    # -- queueing simulation ------------------------------------------------------------
    def simulate(
        self,
        num_requests: int,
        miss_rate: float,
        window: int = 4,
        num_leaves: int = 100_000,
        seed: int = 0,
    ) -> CycleSimResult:
        """Request-by-request queueing simulation (times in cycles).

        Each request performs a pipelined search (serialized DRAM leaf
        read); misses spawn ``updates_per_miss`` updates that must grab a
        speculation slot, occupy it for the tree latency, and retire
        in-order through the commit port.  Two in-flight updates landing
        on the same (or adjacent) leaf crash the younger one, which
        replays after the older retires — the cost structure of
        Algorithms 1–2.
        """
        if num_requests < 1:
            raise ValueError("need at least one request")
        cfg = self.config
        if cfg.updates_per_miss != int(cfg.updates_per_miss):
            raise ValueError("simulate() requires integral updates_per_miss")
        rng = random.Random(seed)
        cycles_per_leaf_access = cfg.leaf_node_bytes / (
            cfg.board_dram_bw / cfg.clock_hz
        )
        whole_updates = cfg.updates_per_miss
        table_ssd_cycles = 0.0
        if cfg.table_ssd_read_bw is not None:
            table_ssd_cycles = cfg.chunk_size / (
                cfg.table_ssd_read_bw / cfg.clock_hz
            )

        search_clock = 0.0  # search-pipeline issue port
        dram_clock = 0.0  # board-DRAM service completion
        ssd_clock = 0.0  # table-SSD read channel
        commit_clock = 0.0  # in-order commit port
        # Speculation slots: (free_at, leaf_id) per slot.
        slots: List[List[float]] = [[0.0, -1] for _ in range(window)]
        crashes = 0
        updates_done = 0
        finish = 0.0

        def dram_access(ready: float) -> float:
            nonlocal dram_clock
            start = max(ready, dram_clock)
            dram_clock = start + cycles_per_leaf_access
            return dram_clock

        for _ in range(num_requests):
            search_clock += 1.0  # one issue slot per clock
            ready = dram_access(search_clock)  # leaf read for the lookup
            finish = max(finish, ready)
            if rng.random() >= miss_rate:
                continue
            # Miss: fetch bucket from the table SSD, then run the updates.
            if table_ssd_cycles:
                ssd_clock = max(ssd_clock, ready) + table_ssd_cycles
                ready = ssd_clock
                finish = max(finish, ready)
            for _ in range(int(whole_updates)):
                leaf = rng.randrange(num_leaves)
                # Crash check against leaves claimed by busy slots
                # (adjacency: the neighbor leaf counts too).
                while True:
                    conflicting = [
                        slot for slot in slots
                        if slot[0] > ready and abs(slot[1] - leaf) <= 1
                    ]
                    if not conflicting:
                        break
                    crashes += 1
                    # Replay once the oldest conflicting update retires.
                    ready = min(slot[0] for slot in conflicting)
                # Claim the earliest-free slot.
                slot = min(slots, key=lambda entry: entry[0])
                start = max(ready, slot[0])
                start = dram_access(start)  # leaf write-back
                done = start + cfg.update_latency_cycles
                commit_clock = max(commit_clock + cfg.commit_cycles, done)
                slot[0] = commit_clock
                slot[1] = leaf
                updates_done += 1
                finish = max(finish, commit_clock)

        total_bytes = num_requests * cfg.chunk_size
        seconds = finish / cfg.clock_hz
        return CycleSimResult(
            requests=num_requests,
            cycles=finish,
            throughput_bytes_per_s=total_bytes / seconds if seconds else 0.0,
            crashes=crashes,
            updates=updates_done,
        )

"""Tenant-aware cache replacement (paper §8).

In multi-tenant or skewed deployments a plain LRU lets one scan-heavy
workload flush everyone's table-cache lines; the paper suggests "a
prioritized LRU policy that considers each workload's locality (similar
to [44])".  :class:`PartitionedLru` implements that idea as a weighted
partitioning:

* every cached line is attributed to the tenant whose request brought
  it in (``active_tenant`` is set by the request-dispatch layer),
* each tenant owns a *weighted share* of the cache; eviction always
  victimizes the tenant most over its share, LRU-within-tenant,
* tenants under their share are protected from other tenants' churn.

The class is API-compatible with :class:`~repro.cache.lru.LruList`, so
it drops into :class:`~repro.cache.table_cache.TableCache` unchanged.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

from .lru import LruList

__all__ = ["PartitionedLru"]


class PartitionedLru:
    """Weighted per-tenant LRU partitions over one shared cache."""

    def __init__(self, weights: Dict[str, float], default_tenant: Optional[str] = None):
        if not weights:
            raise ValueError("need at least one tenant")
        if any(weight <= 0 for weight in weights.values()):
            raise ValueError("weights must be positive")
        total = sum(weights.values())
        self.weights = {tenant: weight / total for tenant, weight in weights.items()}
        self._partitions: Dict[str, LruList] = {
            tenant: LruList() for tenant in weights
        }
        self._owner: Dict = {}  # key -> tenant
        self.active_tenant = (
            default_tenant if default_tenant is not None else next(iter(weights))
        )
        self.evictions_by_tenant: Dict[str, int] = {t: 0 for t in weights}

    # -- tenancy -----------------------------------------------------------------
    def set_active(self, tenant: str) -> None:
        """Attribute subsequent touches to ``tenant``."""
        if tenant not in self._partitions:
            raise KeyError(f"unknown tenant {tenant!r}")
        self.active_tenant = tenant

    def tenant_of(self, key) -> Optional[str]:
        return self._owner.get(key)

    def tenant_size(self, tenant: str) -> int:
        return len(self._partitions[tenant])

    # -- LruList-compatible API ---------------------------------------------------------
    def touch(self, key) -> None:
        previous = self._owner.get(key)
        if previous is not None and previous != self.active_tenant:
            # Shared line re-touched by another tenant: reattribute.
            self._partitions[previous].remove(key)
        self._owner[key] = self.active_tenant
        self._partitions[self.active_tenant].touch(key)

    def remove(self, key) -> bool:
        tenant = self._owner.pop(key, None)
        if tenant is None:
            return False
        return self._partitions[tenant].remove(key)

    def pin(self, key) -> None:
        tenant = self._owner.get(key)
        if tenant is None:
            raise KeyError(f"{key!r} not tracked")
        self._partitions[tenant].pin(key)

    def unpin(self, key) -> None:
        tenant = self._owner.get(key)
        if tenant is not None:
            self._partitions[tenant].unpin(key)

    def coldest(self) -> Optional[object]:
        tenant = self._most_over_share()
        if tenant is None:
            return None
        return self._partitions[tenant].coldest()

    def evict_batch(self, count: int) -> List:
        """Evict up to ``count`` keys, always from the most-over-share
        tenant at each step."""
        if count < 0:
            raise ValueError("count must be non-negative")
        victims: List = []
        while len(victims) < count:
            tenant = self._most_over_share()
            if tenant is None:
                break
            taken = self._partitions[tenant].evict_batch(1)
            if not taken:
                break
            for key in taken:
                del self._owner[key]
                self.evictions_by_tenant[tenant] += 1
            victims.extend(taken)
        return victims

    def __contains__(self, key) -> bool:
        return key in self._owner

    def __len__(self) -> int:
        return len(self._owner)

    def keys_hot_to_cold(self) -> Iterator:
        """All keys (partition order is per-tenant; used by invariants)."""
        for partition in self._partitions.values():
            yield from partition.keys_hot_to_cold()

    # -- internals ---------------------------------------------------------------------
    def _most_over_share(self) -> Optional[str]:
        """The non-empty tenant with the largest occupancy overage."""
        total = len(self._owner)
        if total == 0:
            return None
        best_tenant, best_overage = None, None
        for tenant, partition in self._partitions.items():
            if len(partition) == 0:
                continue
            overage = len(partition) / total - self.weights[tenant]
            if best_overage is None or overage > best_overage:
                best_tenant, best_overage = tenant, overage
        return best_tenant

"""Hardware tree indexing with speculative concurrent updates (§5.5.1).

The FIDR Cache HW-Engine pipelines tree search and update; the hard part
is *concurrent updates* (inserts/deletes for cache-line replacement),
because two in-flight updates may touch the same node during merge/split.
The paper's solution — reproduced here — is speculation with crash and
replay:

* a request first flows down the **search pipeline**, recording the nodes
  it traverses (Algorithm 1's per-level ``request.state``),
* it then walks the recorded path in reverse through the **update
  pipeline**; at each node it checks whether an earlier in-flight request
  speculatively updated the same node (or its neighbor).  If so, the
  request *crashes*: its postponed changes are discarded and the request
  is re-queued for replay (Algorithm 2),
* otherwise its changes are recorded but **postponed** until commit, when
  the crash/replay controller confirms the speculation.

Because fingerprints are uniform-random, same-node collisions among the
few in-flight updates are vanishingly rare (<0.1% in the paper; measured
by :attr:`SpeculativeTreeEngine.crash_count` here), so throughput scales
with the speculation window.

:class:`SpeculativeTreeEngine` is the *functional* model — it operates a
real B+-tree and is validated against sequential application in the test
suite.  The *timing* model (cycles, DRAM bandwidth, Figure 13's curves)
is :class:`repro.cache.cache_engine.CacheEngineModel`.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Deque, List, Optional, Set, Tuple

from .btree import BPlusTree

__all__ = ["TreeOp", "OpResult", "SpeculativeTreeEngine"]


@dataclass(frozen=True)
class TreeOp:
    """One update request for the HW tree.

    ``kind`` is ``"insert"`` (new cache line: bucket index → slot) or
    ``"delete"`` (evicted line).  Searches are not TreeOps — they never
    conflict and flow through the search pipeline freely.
    """

    kind: str
    key: int
    value: Any = None

    def __post_init__(self):
        if self.kind not in ("insert", "delete"):
            raise ValueError(f"unknown op kind {self.kind!r}")
        if self.kind == "insert" and self.value is None:
            raise ValueError("insert requires a value")


@dataclass
class OpResult:
    """Outcome of one committed operation."""

    op: TreeOp
    replays: int  #: how many times the op crashed before committing
    applied: bool  #: False for deletes of absent keys


class _InFlight:
    """A request occupying a speculation slot (Algorithm 1 state).

    Holds *references* to the claimed nodes (not just ids) so a node
    cannot be garbage-collected — and its id reused — while claimed.
    """

    __slots__ = ("op", "path_nodes", "replays")

    def __init__(self, op: TreeOp, path_nodes: List[Any], replays: int):
        self.op = op
        self.path_nodes = path_nodes
        self.replays = replays


class SpeculativeTreeEngine:
    """Functional speculative-update engine over a B+-tree.

    ``window`` is the number of concurrent update requests in flight
    (the paper's optimization supports up to 4).  ``window=1`` is the
    single-update baseline: no speculation, no crashes.
    """

    def __init__(self, tree: Optional[BPlusTree] = None, window: int = 4):
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        self.tree = tree if tree is not None else BPlusTree(order=16)
        self.window = window
        self.crash_count = 0
        self.commit_count = 0
        #: Node ids speculatively claimed by in-flight requests
        #: (Algorithm 1's ``spec_updated_node``).  No two in-flight
        #: requests ever share a node (sharing is exactly what crashes),
        #: so membership is all that matters.
        self._spec_nodes: Set[int] = set()

    # -- search (non-conflicting, always allowed) -----------------------------------
    def search(self, key: int) -> Optional[Any]:
        """Search pipeline: reads never conflict with speculation."""
        return self.tree.search(key)

    # -- Algorithm 1: issue -----------------------------------------------------------
    def _issue(self, op: TreeOp) -> Tuple[bool, List[Any]]:
        """Try to claim the op's path; returns (is_crash, claimed nodes).

        The claimed set is the traversed path plus the leaf's neighbor
        (merges/splits touch siblings, so the paper guards ``node or
        node.neighbor``).
        """
        path_nodes = self._affected_nodes(op)
        if any(id(node) in self._spec_nodes for node in path_nodes):
            return True, []
        self._spec_nodes.update(id(node) for node in path_nodes)
        return False, path_nodes

    def _affected_nodes(self, op: TreeOp) -> List[Any]:
        """The nodes ``op`` will actually modify, as live references.

        This is what makes speculation profitable: an insert only dirties
        its leaf unless the leaf would split, and a split only climbs as
        far as ancestors are themselves full (symmetrically for deletes
        and underflow).  With uniform keys and 16-key leaves, two
        in-flight updates therefore almost never share a dirty node —
        the root is traversed by everyone but modified almost never.
        """
        leaf, path = self.tree._find_leaf(op.key)
        affected: List[Any] = [leaf]
        order = self.tree.order
        min_keys = (order + 1) // 2

        if op.kind == "insert":
            if op.key in leaf.keys:
                return affected  # overwrite in place: leaf only
            if len(leaf.keys) + 1 <= order:
                return affected  # fits: leaf only
            # Split cascades while ancestors are full too.
            if leaf.next_leaf is not None:
                affected.append(leaf.next_leaf)
            for parent, _slot in reversed(path):
                affected.append(parent)
                if len(parent.keys) + 1 <= order:
                    break
            return affected

        # Delete: underflow pulls in the parent and both leaf neighbors.
        if op.key not in leaf.keys:
            return affected  # absent key: no structural change
        if len(leaf.keys) - 1 >= min_keys or not path:
            return affected  # still legal (or root leaf): leaf only
        if leaf.next_leaf is not None:
            affected.append(leaf.next_leaf)
        parent, slot = path[-1]
        if slot > 0:
            affected.append(parent.children[slot - 1])
        for ancestor, _slot in reversed(path):
            affected.append(ancestor)
            if len(ancestor.children) - 1 >= min_keys:
                break
        return affected

    # -- Algorithm 2: commit ------------------------------------------------------------
    def _commit(self, request: _InFlight) -> OpResult:
        """Apply the postponed changes and release the claimed nodes."""
        for node in request.path_nodes:
            self._spec_nodes.discard(id(node))
        if request.op.kind == "insert":
            self.tree.insert(request.op.key, request.op.value)
            applied = True
        else:
            applied = self.tree.delete(request.op.key)
        self.commit_count += 1
        return OpResult(op=request.op, replays=request.replays, applied=applied)

    # -- batch execution ----------------------------------------------------------------
    def execute(self, ops: List[TreeOp]) -> List[OpResult]:
        """Run a batch of updates with up to ``window`` concurrent.

        Models the engine's steady state: keep the speculation window
        full; when a request reaches the head of the window it commits;
        crashed requests are re-inserted into the queue for replay
        (Algorithm 2 line 2).  Results are in commit order.
        """
        queue: Deque[Tuple[TreeOp, int]] = deque((op, 0) for op in ops)
        in_flight: Deque[_InFlight] = deque()
        results: List[OpResult] = []

        while queue or in_flight:
            # Fill the speculation window from the queue.
            while queue and len(in_flight) < self.window:
                op, replays = queue.popleft()
                crashed, claimed = self._issue(op)
                if crashed:
                    self.crash_count += 1
                    queue.append((op, replays + 1))
                    # A crash means some in-flight request owns the node;
                    # draining one guarantees forward progress.
                    break
                in_flight.append(_InFlight(op, claimed, replays))
            if in_flight:
                results.append(self._commit(in_flight.popleft()))
        return results

    @property
    def crash_rate(self) -> float:
        """Fraction of issue attempts that mis-speculated."""
        attempts = self.commit_count + self.crash_count
        return self.crash_count / attempts if attempts else 0.0

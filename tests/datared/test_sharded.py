"""Differential and invariant tests for the fingerprint-sharded engine.

The load-bearing guarantees (DESIGN.md §5.7):

* ``shards=1`` runs the full scatter path yet is *identical* to the
  plain engine — bytes, per-request reports (down to PBNs), stats
  snapshot, container ledger.
* ``shards>=2`` converges to the same live state at every batch
  boundary: identical bytes, identical ``logical_bytes``, identical
  unique+duplicate total, identical ``live_stored_bytes``.  Cumulative
  counters may differ (cross-shard trims defer releases to batch end,
  so a chunk the plain engine retires mid-batch can still dedup in a
  shard), which is exactly why the equality set here is the live one.
* The shard-selection invariant: every live record lives on the shard
  its digest selects — verified by ``check_sharded_engine``.
"""

import pytest

from repro.analysis.invariants import (
    InvariantViolation,
    check_engine,
    check_sharded_engine,
)
from repro.datared import ShardedDedupEngine, shard_for_digest
from repro.datared.dedup import DedupEngine, WriteOptions
from repro.errors import ErrorCode, ReproError, ShardError, error_code_for

CHUNK = 4096


def fresh_pair(num_shards, **kwargs):
    kwargs.setdefault("num_buckets", 256)
    return (
        DedupEngine(**kwargs),
        ShardedDedupEngine(num_shards, **kwargs),
    )


def make_batches(rng, num_batches, batch_chunks, dup_fraction, compressible):
    """Chunk batches mixing fresh and pooled (duplicate) content."""
    def fresh():
        if rng.random() < compressible:
            return rng.randbytes(CHUNK // 2) + bytes(CHUNK // 2)
        return rng.randbytes(CHUNK)

    pool = [fresh() for _ in range(6)]
    batches = []
    for _ in range(num_batches):
        chunk_batch = []
        for _ in range(batch_chunks):
            if rng.random() < dup_fraction:
                chunk_batch.append(pool[rng.randrange(len(pool))])
            else:
                chunk_batch.append(fresh())
        batches.append(chunk_batch)
    return batches


def write_batches(engine, batches, rng=None, overwrite_fraction=0.0):
    """Drive batches through ``write_many``; returns all reports.

    With ``overwrite_fraction`` some requests rewrite an already-used
    LBA instead of a fresh one, exercising cross-shard moves.
    """
    step = engine.chunker.blocks_per_chunk
    reports = []
    next_lba = 0
    used = []
    for batch in batches:
        requests = []
        for data in batch:
            if used and rng is not None and rng.random() < overwrite_fraction:
                lba = used[rng.randrange(len(used))]
            else:
                lba = next_lba
                next_lba += step
                used.append(lba)
            requests.append((lba, data))
        reports.extend(engine.write_many(requests))
    return reports, used


def payload_for_shard(rng, engine, target):
    """Random chunk whose digest routes to shard ``target``."""
    while True:
        data = rng.randbytes(CHUNK)
        digest = engine.fingerprinter.digest(data)
        if shard_for_digest(digest, engine.num_shards) == target:
            return data


class TestShardForDigest:
    def test_single_shard_is_always_zero(self, rng):
        for _ in range(64):
            assert shard_for_digest(rng.randbytes(32), 1) == 0

    def test_in_range_and_deterministic(self, rng):
        for num_shards in (2, 3, 4, 7):
            for _ in range(128):
                digest = rng.randbytes(32)
                first = shard_for_digest(digest, num_shards)
                assert 0 <= first < num_shards
                assert shard_for_digest(digest, num_shards) == first

    def test_all_shards_reachable(self, rng):
        hit = {shard_for_digest(rng.randbytes(32), 4) for _ in range(512)}
        assert hit == {0, 1, 2, 3}

    def test_prefix_ranges_are_contiguous(self):
        # The range partition: digests sorted by 8-byte prefix map to
        # monotonically non-decreasing shard indexes.
        digests = sorted(
            (bytes([a, b]) + bytes(30))
            for a in range(0, 256, 17)
            for b in range(0, 256, 29)
        )
        owners = [shard_for_digest(digest, 5) for digest in digests]
        assert owners == sorted(owners)


class TestShardsOneIdentity:
    """shards=1 through the full scatter path == the plain engine."""

    def test_reports_bytes_and_ledgers_match(self, rng):
        plain, sharded = fresh_pair(1)
        batches = make_batches(
            rng, num_batches=5, batch_chunks=12,
            dup_fraction=0.4, compressible=0.5,
        )
        seed = rng.random()
        import random as _random
        plain_reports, lbas = write_batches(
            plain, batches, rng=_random.Random(seed), overwrite_fraction=0.2
        )
        sharded_reports, _ = write_batches(
            sharded, batches, rng=_random.Random(seed), overwrite_fraction=0.2
        )
        assert plain_reports == sharded_reports
        for lba in lbas:
            assert sharded.read(lba, 1) == plain.read(lba, 1)
        assert sharded.stats_snapshot() == plain.stats_snapshot()
        assert (
            sharded.shards[0].containers.live_bytes
            == plain.containers.live_bytes
        )
        check_engine(plain)
        check_sharded_engine(sharded)
        sharded.shutdown()

    def test_trim_matches(self, rng):
        plain, sharded = fresh_pair(1)
        data = rng.randbytes(CHUNK)
        for engine in (plain, sharded):
            engine.write(0, data)
            engine.write(8, data)
        assert plain.trim(0) == sharded.trim(0)
        assert plain.trim(0) == sharded.trim(0)  # double trim: no-op
        assert sharded.read(0, 1).data == plain.read(0, 1).data == bytes(CHUNK)
        assert sharded.stats_snapshot() == plain.stats_snapshot()
        sharded.shutdown()

    def test_flush_and_collect_garbage_match(self, rng):
        plain, sharded = fresh_pair(1)
        for engine in (plain, sharded):
            step = engine.chunker.blocks_per_chunk
            for index in range(24):
                engine.write(index * step, rng.randbytes(CHUNK))
        rewrites = [
            (index * plain.chunker.blocks_per_chunk, rng.randbytes(CHUNK))
            for index in range(20)
        ]
        for engine in (plain, sharded):
            engine.write_many(rewrites)
            engine.flush()
        assert plain.collect_garbage() == sharded.collect_garbage()
        assert sharded.stats_snapshot() == plain.stats_snapshot()
        sharded.shutdown()


@pytest.mark.parametrize("dup_fraction", [0.0, 0.5])
@pytest.mark.parametrize("compressible", [0.0, 1.0])
@pytest.mark.parametrize("batch_chunks", [1, 7, 16])
class TestShardsFourGrid:
    """dedup x compressibility x batch-boundary grid at shards=4.

    Live state must converge at every batch boundary even though
    cumulative counters may legitimately diverge (module docstring).
    """

    def test_live_state_converges_each_batch(
        self, rng, dup_fraction, compressible, batch_chunks
    ):
        plain, sharded = fresh_pair(4)
        batches = make_batches(
            rng, num_batches=4, batch_chunks=batch_chunks,
            dup_fraction=dup_fraction, compressible=compressible,
        )
        step = plain.chunker.blocks_per_chunk
        next_lba = 0
        used = []
        for batch in batches:
            requests = []
            for data in batch:
                # Every third chunk overwrites an existing LBA once
                # some exist — the cross-shard move exerciser.
                if used and len(requests) % 3 == 2:
                    lba = used[len(requests) % len(used)]
                else:
                    lba = next_lba
                    next_lba += step
                    used.append(lba)
                requests.append((lba, data))
            plain.write_many(requests)
            sharded.write_many(requests)
            # -- batch boundary: live state must have converged --
            plain_snap = plain.stats_snapshot()
            sharded_snap = sharded.stats_snapshot()
            assert sharded_snap.logical_bytes == plain_snap.logical_bytes
            assert (
                sharded_snap.unique_chunks + sharded_snap.duplicate_chunks
                == plain_snap.unique_chunks + plain_snap.duplicate_chunks
            )
            assert (
                sharded_snap.live_stored_bytes
                == plain_snap.live_stored_bytes
            )
            for lba in used:
                assert sharded.read(lba, 1).data == plain.read(lba, 1).data
            check_engine(plain)
            check_sharded_engine(sharded)
        sharded.shutdown()


class TestSingleWriteRoutesThroughShards:
    """Satellite: single-chunk write/read shares the batched shard
    selection — one code path, so the two can never diverge."""

    def test_write_equals_write_many(self, rng):
        solo = ShardedDedupEngine(4, num_buckets=256)
        batched = ShardedDedupEngine(4, num_buckets=256)
        payloads = [rng.randbytes(CHUNK) for _ in range(8)]
        step = solo.chunker.blocks_per_chunk
        for index, data in enumerate(payloads):
            report = solo.write(index * step, data)
            twin = batched.write_many([(index * step, data)])[0]
            assert report == twin
        assert solo.stats_snapshot() == batched.stats_snapshot()
        assert solo._lba_shard == batched._lba_shard
        solo.shutdown()
        batched.shutdown()

    def test_single_write_lands_on_digest_shard(self, rng):
        engine = ShardedDedupEngine(4, num_buckets=256)
        for target in range(4):
            data = payload_for_shard(rng, engine, target)
            lba = target * engine.chunker.blocks_per_chunk
            engine.write(lba, data)
            assert engine._lba_shard[lba] == target
            with engine.shards[target].lock:
                assert lba in dict(engine.shards[target].lba_map.items())
            assert engine.read(lba, 1).data == data
        check_sharded_engine(engine)
        engine.shutdown()

    def test_write_options_digests_respected(self, rng):
        engine = ShardedDedupEngine(4, num_buckets=256)
        data = rng.randbytes(CHUNK)
        digest = engine.fingerprinter.digest(data)
        engine.write(0, data, options=WriteOptions(digests=[digest]))
        owner = shard_for_digest(digest, 4)
        assert engine._lba_shard[0] == owner
        check_sharded_engine(engine)
        engine.shutdown()


class TestCrossShardMoves:
    def test_overwrite_moves_lba_between_shards(self, rng):
        engine = ShardedDedupEngine(4, num_buckets=256)
        first = payload_for_shard(rng, engine, 1)
        second = payload_for_shard(rng, engine, 3)
        engine.write(0, first)
        assert engine._lba_shard[0] == 1
        report = engine.write(0, second)
        assert engine._lba_shard[0] == 3
        assert report.reclaimed_chunks == 1  # shard 1's mapping retired
        assert engine.read(0, 1).data == second
        with engine.shards[1].lock:
            assert 0 not in dict(engine.shards[1].lba_map.items())
        check_sharded_engine(engine)
        engine.shutdown()

    def test_same_lba_twice_in_one_batch_last_writer_wins(self, rng):
        engine = ShardedDedupEngine(4, num_buckets=256)
        first = payload_for_shard(rng, engine, 0)
        second = payload_for_shard(rng, engine, 2)
        engine.write_many([(0, first), (0, second)])
        assert engine._lba_shard[0] == 2
        assert engine.read(0, 1).data == second
        check_sharded_engine(engine)
        engine.shutdown()

    def test_global_dedup_across_shards(self, rng):
        # The same content at N LBAs is stored exactly once cluster-wide
        # because content routing sends every copy to one shard.
        engine = ShardedDedupEngine(4, num_buckets=256)
        data = rng.randbytes(CHUNK)
        step = engine.chunker.blocks_per_chunk
        engine.write_many([(index * step, data) for index in range(10)])
        snap = engine.stats_snapshot()
        assert snap.unique_chunks == 1
        assert snap.duplicate_chunks == 9
        owner = shard_for_digest(engine.fingerprinter.digest(data), 4)
        owners = {engine._lba_shard[index * step] for index in range(10)}
        assert owners == {owner}
        check_sharded_engine(engine)
        engine.shutdown()

    def test_trim_unmaps_and_reclaims(self, rng):
        engine = ShardedDedupEngine(4, num_buckets=256)
        data = rng.randbytes(CHUNK)
        engine.write(0, data)
        report = engine.trim(0)
        assert report.reclaimed_chunks == 1
        assert 0 not in engine._lba_shard
        assert engine.read(0, 1).data == bytes(CHUNK)
        assert engine.trim(0).reclaimed_chunks == 0
        check_sharded_engine(engine)
        engine.shutdown()


class TestShardFaults:
    """Satellite: a failing shard surfaces a typed error while the
    healthy shards' ledgers stay conserved."""

    def _failing_engine(self, rng, broken=2):
        engine = ShardedDedupEngine(4, num_buckets=256)
        original = engine.shards[broken]._write_many_locked

        def boom(requests, digests):
            raise RuntimeError("injected shard fault")

        engine.shards[broken]._write_many_locked = boom
        return engine, original

    def test_typed_shard_error_with_indexes(self, rng):
        engine, _ = self._failing_engine(rng, broken=2)
        doomed = payload_for_shard(rng, engine, 2)
        healthy = payload_for_shard(rng, engine, 0)
        with pytest.raises(ShardError) as excinfo:
            engine.write_many([(0, healthy), (8, doomed)])
        assert excinfo.value.shard_indexes == (2,)
        assert isinstance(excinfo.value, ReproError)
        assert error_code_for(excinfo.value) is ErrorCode.SHARD_FAILED
        engine.shutdown()

    def test_healthy_shards_stay_conserved(self, rng):
        engine, original = self._failing_engine(rng, broken=2)
        healthy = [payload_for_shard(rng, engine, index) for index in (0, 1, 3)]
        doomed = payload_for_shard(rng, engine, 2)
        step = engine.chunker.blocks_per_chunk
        requests = [(index * step, data) for index, data in enumerate(healthy)]
        requests.append((3 * step, doomed))
        with pytest.raises(ShardError):
            engine.write_many(requests)
        # The injected failure must not have corrupted any ledger: the
        # healthy shards committed their chunks, the broken shard's
        # ledger is untouched, and the cluster invariants all hold.
        check_sharded_engine(engine)
        for index in range(3):
            assert engine.read(index * step, 1).data == healthy[index]
        # The broken shard heals and the cluster keeps working.
        engine.shards[2]._write_many_locked = original
        engine.write(3 * step, doomed)
        assert engine.read(3 * step, 1).data == doomed
        check_sharded_engine(engine)
        engine.shutdown()


class TestStatsAggregation:
    def test_snapshot_is_sum_of_shards(self, rng):
        engine = ShardedDedupEngine(4, num_buckets=256)
        batches = make_batches(
            rng, num_batches=3, batch_chunks=10,
            dup_fraction=0.5, compressible=0.5,
        )
        write_batches(engine, batches)
        merged = engine.stats_snapshot()
        per_shard = engine.shard_snapshots()
        for name in (
            "logical_bytes", "unique_logical_bytes", "stored_bytes",
            "reclaimed_stored_bytes", "duplicate_chunks", "unique_chunks",
            "containers_sealed",
        ):
            assert getattr(merged, name) == sum(
                getattr(snap, name) for snap in per_shard
            )
        engine.shutdown()

    def test_per_shard_gauges_published(self, rng):
        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry()
        engine = ShardedDedupEngine(2, num_buckets=256, registry=registry)
        engine.write(0, rng.randbytes(CHUNK))
        snapshot = registry.snapshot()
        assert snapshot["gauges"]["engine.shards"] == 2
        for index in range(2):
            assert f"engine.shard.{index}.logical_bytes" in snapshot["gauges"]
        total = sum(
            snapshot["gauges"][f"engine.shard.{index}.logical_bytes"]
            for index in range(2)
        )
        assert total == snapshot["gauges"]["engine.logical_bytes"] == CHUNK
        engine.shutdown()


class TestInvariantChecker:
    def test_detects_misrouted_record(self, rng):
        # Plant a record on the wrong shard by writing it directly into
        # a shard engine, bypassing the router.
        engine = ShardedDedupEngine(2, num_buckets=256)
        data = payload_for_shard(rng, engine, 0)
        engine.shards[1].write(0, data)
        violations = check_sharded_engine(engine, raise_on_violation=False)
        assert any("shard-selection" in item for item in violations)
        with pytest.raises(InvariantViolation):
            check_sharded_engine(engine)
        engine.shutdown()

    def test_detects_directory_drift(self, rng):
        engine = ShardedDedupEngine(2, num_buckets=256)
        engine.write(0, rng.randbytes(CHUNK))
        engine._lba_shard[12345] = 1
        violations = check_sharded_engine(engine, raise_on_violation=False)
        assert any("12345" in item for item in violations)
        engine.shutdown()

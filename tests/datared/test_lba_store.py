"""Tests for the paged, cached LBA→PBN store."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.cache.table_cache import TableCache
from repro.datared.compression import ModeledCompressor
from repro.datared.dedup import DedupEngine
from repro.datared.hash_pbn import InMemoryBucketStore
from repro.datared.lba_store import ENTRIES_PER_PAGE, PagedLbaStore


class TestBasics:
    def test_entries_per_page(self):
        assert ENTRIES_PER_PAGE == 4096 // 6 == 682

    def test_get_unmapped(self):
        assert PagedLbaStore().get(0) is None
        assert 0 not in PagedLbaStore()

    def test_set_get(self):
        store = PagedLbaStore()
        assert store.set(10, 5) is None
        assert store.get(10) == 5
        assert len(store) == 1

    def test_remap_returns_previous(self):
        store = PagedLbaStore()
        store.set(10, 5)
        assert store.set(10, 7) == 5
        assert len(store) == 1

    def test_unmap(self):
        store = PagedLbaStore()
        store.set(3, 9)
        assert store.unmap(3) == 9
        assert store.unmap(3) is None
        assert len(store) == 0

    def test_pbn_zero_is_representable(self):
        store = PagedLbaStore()
        store.set(0, 0)
        assert store.get(0) == 0

    def test_cross_page_addresses(self):
        store = PagedLbaStore()
        lbas = [0, ENTRIES_PER_PAGE - 1, ENTRIES_PER_PAGE, 5 * ENTRIES_PER_PAGE + 7]
        for index, lba in enumerate(lbas):
            store.set(lba, index)
        for index, lba in enumerate(lbas):
            assert store.get(lba) == index

    def test_items(self):
        store = PagedLbaStore()
        store.set(1, 10)
        store.set(ENTRIES_PER_PAGE + 2, 20)
        assert dict(store.items()) == {1: 10, ENTRIES_PER_PAGE + 2: 20}

    def test_validation(self):
        store = PagedLbaStore()
        with pytest.raises(ValueError):
            store.get(-1)
        with pytest.raises(ValueError):
            store.set(0, -1)

    @settings(max_examples=25, deadline=None)
    @given(st.lists(
        st.tuples(st.integers(0, 3000), st.integers(0, 500)),
        max_size=80,
    ))
    def test_matches_dict_model(self, ops):
        store = PagedLbaStore()
        model = {}
        for lba, pbn in ops:
            assert store.set(lba, pbn) == model.get(lba)
            model[lba] = pbn
        for lba, pbn in model.items():
            assert store.get(lba) == pbn
        assert len(store) == len(model)


class TestLocality:
    """§2.1.4's claim: address locality makes a small page cache enough."""

    def _hit_rate(self, lbas) -> float:
        cache = TableCache(InMemoryBucketStore(), capacity_lines=4,
                           eviction_batch=1)
        store = PagedLbaStore(store=cache)
        for pbn, lba in enumerate(lbas):
            store.set(lba, pbn)
        return cache.stats.hit_rate

    def test_sequential_addresses_hit_almost_always(self):
        sequential = self._hit_rate(range(4000))
        assert sequential > 0.95

    def test_random_addresses_hit_rarely(self):
        rng = random.Random(3)
        random_rate = self._hit_rate(
            [rng.randrange(400 * ENTRIES_PER_PAGE) for _ in range(4000)]
        )
        assert random_rate < 0.5

    def test_locality_gap(self):
        rng = random.Random(4)
        sequential = self._hit_rate(range(3000))
        scattered = self._hit_rate(
            [rng.randrange(300 * ENTRIES_PER_PAGE) for _ in range(3000)]
        )
        assert sequential > scattered + 0.4


class TestEngineIntegration:
    def test_dedup_engine_over_paged_store(self, rng):
        engine = DedupEngine(
            num_buckets=512,
            compressor=ModeledCompressor(0.5),
            lba_map=PagedLbaStore(),
        )
        state = {}
        for _ in range(150):
            lba = rng.randrange(2000)
            data = rng.randbytes(4096)
            engine.write(lba, data)
            state[lba] = data
        for lba, data in state.items():
            assert engine.read(lba, 1).data == data

    def test_overwrite_reclaim_still_works(self, rng):
        engine = DedupEngine(
            num_buckets=512,
            compressor=ModeledCompressor(0.5),
            lba_map=PagedLbaStore(),
        )
        engine.write(0, rng.randbytes(4096))
        report = engine.write(0, rng.randbytes(4096))
        assert report.reclaimed_chunks == 1

"""The codec/fingerprint plugin API: registry behavior, 1-byte tag
round-trips, tag-dispatched reads independent of the configured write
codec, mixed-codec containers surviving reconfiguration and GC, and the
missing-optional-dependency error path."""

from __future__ import annotations

import pytest

from repro.datared import codecs
from repro.datared import hashing
from repro.datared.codecs import (
    AdaptiveCodec,
    RawCodec,
    TAG_DEFLATE,
    TAG_LZ4,
    TAG_MODELED,
    TAG_RAW,
    TAG_ZSTD,
    available_codecs,
    codec_available,
    codec_names,
    create_codec,
    decode_chunk,
    decode_many,
    register_codec,
    register_decoder,
)
from repro.datared.compression import (
    CompressedChunk,
    Compressor,
    ModeledCompressor,
    ZlibCompressor,
)
from repro.datared.dedup import DedupEngine
from repro.datared.hashing import (
    FINGERPRINT_SIZE,
    Fingerprinter,
    Sha256Fingerprinter,
    available_fingerprinters,
    create_fingerprinter,
    fingerprint,
    fingerprint_many,
    fingerprinter_names,
    register_fingerprinter,
)
from repro.errors import MissingDependencyError
from repro.obs.metrics import MetricsRegistry
from repro.parallel import StagePool

CHUNK = 4096


def make_chunk(rng, size: int = CHUNK) -> bytes:
    """A random (incompressible) chunk."""
    return rng.randbytes(size)


def make_compressible_chunk(rng, size: int = CHUNK) -> bytes:
    """Half random, half zeros: medium entropy, compresses about 2:1."""
    head = rng.randbytes(size // 2)
    return head + b"\x00" * (size - len(head))


def corpus(rng, count: int = 8):
    """A deterministic mix of incompressible/compressible/zero chunks."""
    chunks = []
    for index in range(count):
        if index % 3 == 0:
            chunks.append(make_chunk(rng, CHUNK))
        elif index % 3 == 1:
            chunks.append(make_compressible_chunk(rng, CHUNK))
        else:
            chunks.append(b"\x00" * CHUNK)
    return chunks


def as_container_chunk(chunk: CompressedChunk) -> CompressedChunk:
    """Re-shape a fresh chunk the way the container read path sees it:
    tag folded into the payload bytes, no prefix."""
    return CompressedChunk(
        payload=chunk.materialize(),
        logical_size=chunk.logical_size,
        stored_size=chunk.stored_size,
    )


# -- registry ---------------------------------------------------------------


class TestCodecRegistry:
    def test_builtin_codecs_are_registered(self):
        names = codec_names()
        for name in ("zlib", "raw", "modeled", "adaptive", "zstd", "lz4"):
            assert name in names

    def test_always_available_codecs(self):
        for name in ("zlib", "raw", "modeled", "adaptive"):
            assert codec_available(name)
            assert name in available_codecs()

    def test_create_codec_builds_the_registered_type(self):
        assert isinstance(create_codec("zlib"), ZlibCompressor)
        assert isinstance(create_codec("raw"), RawCodec)
        assert isinstance(create_codec("modeled"), ModeledCompressor)
        assert isinstance(create_codec("adaptive"), AdaptiveCodec)

    def test_create_codec_forwards_params(self):
        modeled = create_codec("modeled", ratio=0.25)
        chunk = modeled.compress(b"\x00" * CHUNK)
        assert chunk.stored_size == CHUNK // 4

    def test_unknown_codec_is_a_value_error(self):
        with pytest.raises(ValueError, match="unknown codec"):
            create_codec("snappy")

    def test_duplicate_registration_is_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_codec("zlib", ZlibCompressor)

    def test_empty_name_is_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            register_codec("", ZlibCompressor)

    def test_replace_allows_reregistration(self):
        register_codec("zlib", ZlibCompressor, replace=True)
        assert isinstance(create_codec("zlib"), ZlibCompressor)

    def test_missing_library_raises_typed_error(self, monkeypatch):
        monkeypatch.setattr(codecs, "zstandard", None)
        monkeypatch.setattr(codecs, "lz4", None)
        assert not codec_available("zstd")
        assert not codec_available("lz4")
        assert "zstd" in codec_names()  # registered, just not available
        with pytest.raises(MissingDependencyError, match="codecs"):
            create_codec("zstd")
        with pytest.raises(MissingDependencyError, match="codecs"):
            create_codec("lz4")

    def test_missing_dependency_is_also_a_value_error(self, monkeypatch):
        # Callers that pre-date the typed hierarchy catch ValueError.
        monkeypatch.setattr(codecs, "zstandard", None)
        with pytest.raises(ValueError):
            create_codec("zstd")


# -- tag round-trips --------------------------------------------------------


class TestTagRoundTrips:
    @pytest.mark.parametrize("name", ["zlib", "raw", "modeled", "adaptive"])
    def test_fresh_and_container_chunks_decode(self, name, rng):
        codec = create_codec(name)
        for data in corpus(rng):
            fresh = codec.compress(data)
            assert decode_chunk(fresh) == data
            assert decode_chunk(as_container_chunk(fresh)) == data
            assert codec.decompress(fresh) == data

    def test_fresh_chunks_carry_the_tag(self, rng):
        compressible = make_compressible_chunk(rng, CHUNK)
        # zlib's deflate branch folds the tag into the payload in one
        # join (materialize() is then a no-op); the others keep it in
        # the prefix and borrow the caller's buffer.
        zlib_chunk = create_codec("zlib").compress(compressible)
        assert zlib_chunk.prefix == b""
        assert zlib_chunk.payload[0] == TAG_DEFLATE
        assert create_codec("raw").compress(compressible).prefix == bytes(
            [TAG_RAW]
        )
        assert create_codec("modeled").compress(compressible).prefix == bytes(
            [TAG_MODELED]
        )

    def test_incompressible_chunks_share_the_raw_escape(self, rng):
        data = make_chunk(rng, CHUNK)
        chunk = create_codec("zlib").compress(data)
        assert chunk.prefix == bytes([TAG_RAW])
        assert chunk.stored_size == CHUNK
        # Any codec's reader decodes another codec's escape.
        assert create_codec("raw").decompress(chunk) == data

    def test_raw_codec_never_compresses(self, rng):
        chunk = create_codec("raw").compress(b"\x00" * CHUNK)
        assert chunk.stored_size == CHUNK
        assert chunk.prefix == bytes([TAG_RAW])

    def test_decode_many_preserves_order(self, rng):
        codec = create_codec("zlib")
        data = corpus(rng, 12)
        chunks = [as_container_chunk(codec.compress(d)) for d in data]
        assert decode_many(chunks) == data

    def test_decode_many_fans_out_on_a_pool(self, rng):
        codec = create_codec("zlib")
        data = corpus(rng, 12)
        chunks = [as_container_chunk(codec.compress(d)) for d in data]
        pool = StagePool(2)
        try:
            assert decode_many(chunks, pool=pool, fallback=codec) == data
        finally:
            pool.shutdown()


# -- decode_chunk fallback semantics ----------------------------------------


class LegacyVerbatimCompressor(Compressor):
    """A pre-tag-era codec: payload is the chunk verbatim, no tag byte.

    Stands in for any container written before the tag discipline: the
    first payload byte is arbitrary chunk data, so tag dispatch must
    fail cleanly and hand the bytes to the configured fallback.
    """

    name = "legacy"

    def compress(self, data) -> CompressedChunk:
        size = len(data)
        return CompressedChunk(
            payload=bytes(data), logical_size=size, stored_size=size // 2
        )

    def decompress(self, chunk: CompressedChunk) -> bytes:
        if len(chunk.payload) != chunk.logical_size:
            raise ValueError("not a legacy verbatim payload")
        return bytes(chunk.payload)


class TestDecodeFallback:
    def test_legacy_payload_starting_with_zero_byte(self):
        # An all-zeros legacy chunk: payload[0] == TAG_RAW, but the body
        # is one byte short of a tagged raw chunk, so the raw decoder's
        # size check fails and the fallback decodes it.
        legacy = LegacyVerbatimCompressor()
        chunk = legacy.compress(b"\x00" * CHUNK)
        assert decode_chunk(chunk, legacy) == b"\x00" * CHUNK

    def test_legacy_payload_starting_with_deflate_tag(self):
        # First byte 0x01 routes to the DEFLATE decoder, which cannot
        # produce logical_size bytes from chunk data; fallback wins.
        legacy = LegacyVerbatimCompressor()
        data = b"\x01" + b"\x00" * (CHUNK - 1)
        chunk = legacy.compress(data)
        assert decode_chunk(chunk, legacy) == data

    def test_legacy_payloads_survive_any_first_byte(self, rng):
        legacy = LegacyVerbatimCompressor()
        for first in range(8):
            data = bytes([first]) + make_chunk(rng, CHUNK - 1)
            assert decode_chunk(legacy.compress(data), legacy) == data

    def test_unknown_tag_without_fallback_is_an_error(self):
        chunk = CompressedChunk(
            payload=b"\x7fbody", logical_size=4, stored_size=5
        )
        with pytest.raises(ValueError, match="unknown codec tag 0x7f"):
            decode_chunk(chunk)

    def test_failed_decode_without_fallback_propagates(self):
        chunk = CompressedChunk(
            payload=b"\x00" * CHUNK, logical_size=CHUNK, stored_size=CHUNK
        )
        with pytest.raises(ValueError):
            decode_chunk(chunk)

    def test_missing_dependency_is_never_masked_by_fallback(self, monkeypatch):
        # A prefix-tagged zstd chunk with the library absent must
        # surface the install problem, not hand the frame bytes to the
        # fallback codec — a fresh chunk's prefix is authoritative.
        monkeypatch.setattr(codecs, "zstandard", None)
        chunk = CompressedChunk(
            payload=b"frame-bytes",
            logical_size=CHUNK,
            stored_size=12,
            prefix=bytes([TAG_ZSTD]),
        )
        with pytest.raises(MissingDependencyError, match="zstandard"):
            decode_chunk(chunk, ZlibCompressor())

    def test_missing_lz4_surfaces_the_same_way(self, monkeypatch):
        monkeypatch.setattr(codecs, "lz4", None)
        chunk = CompressedChunk(
            payload=b"block-bytes",
            logical_size=CHUNK,
            stored_size=12,
            prefix=bytes([TAG_LZ4]),
        )
        with pytest.raises(MissingDependencyError, match="lz4"):
            decode_chunk(chunk, ZlibCompressor())

    def test_container_read_of_zstd_chunk_still_surfaces_install(
        self, monkeypatch
    ):
        # Payload-tagged (container-read) zstd chunk, library absent:
        # the fallback gets one attempt because the tag byte might be
        # legacy chunk data — but when it cannot decode the body, the
        # install error resurfaces instead of the fallback's.
        monkeypatch.setattr(codecs, "zstandard", None)
        chunk = CompressedChunk(
            payload=bytes([TAG_ZSTD]) + b"frame-bytes",
            logical_size=CHUNK,
            stored_size=12,
        )
        with pytest.raises(MissingDependencyError, match="zstandard"):
            decode_chunk(chunk, ZlibCompressor())

    def test_legacy_payload_colliding_with_optional_tag(self, monkeypatch):
        # A pre-tag verbatim payload whose first byte happens to be the
        # zstd tag must stay readable even without the library: the
        # fallback decodes it, so the install error never fires.
        monkeypatch.setattr(codecs, "zstandard", None)
        legacy = LegacyVerbatimCompressor()
        data = bytes([TAG_ZSTD]) + b"\x11" * (CHUNK - 1)
        assert decode_chunk(legacy.compress(data), legacy) == data


class TestRegisterDecoder:
    def test_new_tag_dispatches(self):
        tag = 0x7E

        def decode(chunk: CompressedChunk) -> bytes:
            return bytes(chunk.payload[1:])

        register_decoder(tag, decode)
        try:
            chunk = CompressedChunk(
                payload=bytes([tag]) + b"data", logical_size=4, stored_size=5
            )
            assert decode_chunk(chunk) == b"data"
        finally:
            codecs._DECODERS.pop(tag, None)

    def test_allocated_tag_is_protected(self):
        with pytest.raises(ValueError, match="already allocated"):
            register_decoder(TAG_DEFLATE, lambda chunk: b"")

    def test_replace_takes_an_allocated_tag(self):
        original = codecs._DECODERS[TAG_MODELED]
        try:
            register_decoder(TAG_MODELED, lambda chunk: b"x", replace=True)
            chunk = CompressedChunk(
                payload=bytes([TAG_MODELED]), logical_size=1, stored_size=1
            )
            assert decode_chunk(chunk) == b"x"
        finally:
            register_decoder(TAG_MODELED, original, replace=True)

    def test_tag_must_fit_one_byte(self):
        with pytest.raises(ValueError, match="one byte"):
            register_decoder(0x100, lambda chunk: b"")
        with pytest.raises(ValueError, match="one byte"):
            register_decoder(-1, lambda chunk: b"")


# -- the adaptive codec -----------------------------------------------------


class TestAdaptiveCodec:
    def test_routes_by_entropy_probe(self, rng):
        codec = AdaptiveCodec()
        assert codec._route(b"\x00" * CHUNK) is codec.primary
        assert codec._route(make_chunk(rng, CHUNK)) is codec.skip
        assert (
            codec._route(make_compressible_chunk(rng, CHUNK)) is codec.fast
        )

    def test_random_chunks_skip_compression(self, rng):
        codec = AdaptiveCodec()
        chunk = codec.compress(make_chunk(rng, CHUNK))
        assert chunk.prefix == bytes([TAG_RAW])
        assert chunk.stored_size == CHUNK

    def test_routing_publishes_counters(self, rng):
        registry = MetricsRegistry()
        codec = AdaptiveCodec(registry=registry)
        codec.compress(b"\x00" * CHUNK)  # -> primary
        codec.compress(make_chunk(rng, CHUNK))  # -> skip
        primary = registry.counter(
            f"codec.adaptive.chosen.{codec.primary.name}"
        )
        skipped = registry.counter("codec.adaptive.chosen.raw")
        assert primary.value == 1
        assert skipped.value == 1

    def test_compress_many_preserves_order_and_counts(self, rng):
        registry = MetricsRegistry()
        codec = AdaptiveCodec(registry=registry)
        data = corpus(rng, 9)
        chunks = codec.compress_many(data)
        assert [decode_chunk(c, codec.primary) for c in chunks] == data
        total = sum(
            registry.counter(f"codec.adaptive.chosen.{t.name}").value
            for t in {
                id(t): t for t in (codec.skip, codec.fast, codec.primary)
            }.values()
        )
        assert total == len(data)

    def test_survives_pickling(self, rng):
        import pickle

        codec = AdaptiveCodec()
        clone = pickle.loads(pickle.dumps(codec))
        data = make_compressible_chunk(rng, CHUNK)
        assert decode_chunk(clone.compress(data), clone.primary) == data

    def test_threshold_validation(self):
        with pytest.raises(ValueError, match="probe_bytes"):
            AdaptiveCodec(probe_bytes=4)
        with pytest.raises(ValueError, match="thresholds"):
            AdaptiveCodec(raw_threshold=0.2, fast_threshold=0.5)


# -- engine-level mixed-codec containers ------------------------------------


class TestMixedCodecEngine:
    def test_reconfigure_overwrite_and_gc(self, rng):
        # Phase 1: write with zlib.  Phase 2: reconfigure to a different
        # codec, overwrite half the LBAs and add new ones.  Every read —
        # before and after GC compaction — must return exact bytes, with
        # containers now holding chunks from both codecs.
        engine = DedupEngine(num_buckets=256, compressor=create_codec("zlib"))
        first = {
            lba * 8: make_compressible_chunk(rng, CHUNK) for lba in range(6)
        }
        for lba, data in first.items():
            engine.write(lba, data)

        engine.compressor = create_codec("adaptive")
        expected = dict(first)
        for lba in list(first)[::2]:
            expected[lba] = make_chunk(rng, CHUNK)
            engine.write(lba, expected[lba])
        for lba in range(6, 10):
            expected[lba * 8] = make_compressible_chunk(rng, CHUNK)
            engine.write(lba * 8, expected[lba * 8])

        for lba, data in expected.items():
            assert engine.read(lba, 1).data == data

        engine.collect_garbage(threshold=0.01)
        for lba, data in expected.items():
            assert engine.read(lba, 1).data == data

    def test_legacy_pre_tag_containers_stay_readable(self, rng):
        # An engine whose containers were written before the tag
        # discipline: untagged verbatim payloads, including all-zero
        # chunks (first byte == TAG_RAW) and chunks whose first byte
        # collides with the DEFLATE tag.
        legacy = LegacyVerbatimCompressor()
        engine = DedupEngine(num_buckets=256, compressor=legacy)
        payloads = {
            0: b"\x00" * CHUNK,
            8: b"\x01" + make_chunk(rng, CHUNK - 1),
            16: make_chunk(rng, CHUNK),
        }
        for lba, data in payloads.items():
            engine.write(lba, data)
        for lba, data in payloads.items():
            assert engine.read(lba, 1).data == data
        # Multi-chunk read exercises decode_many's fallback plumbing.
        bulk = b"".join(payloads[lba] for lba in (0, 8, 16))
        engine.write(64, bulk)
        assert engine.read(64, 3).data == bulk

    def test_modeled_chunks_flow_through_the_tag_path(self, rng):
        # Satellite: ModeledCompressor emits tag 0x04 chunks that decode
        # via the registry even when the engine is later reconfigured.
        engine = DedupEngine(
            num_buckets=256, compressor=ModeledCompressor(0.5)
        )
        data = make_chunk(rng, CHUNK)
        engine.write(0, data)
        engine.compressor = create_codec("zlib")
        assert engine.read(0, 1).data == data
        snap = engine.stats_snapshot()
        assert snap.stored_bytes == CHUNK // 2  # modeled accounting held


# -- differential: serial / thread / process, every available codec ---------


class TestExecutorDifferential:
    @pytest.mark.parametrize("name", sorted(available_codecs()))
    def test_bytes_and_ledgers_identical_across_backends(self, name, rng):
        requests = []
        lba = 0
        for data in corpus(rng, 8) + [b"\x07" * CHUNK]:
            requests.append((lba, data))
            lba += CHUNK // 512
        requests.append(requests[1])  # a duplicate write

        def run(pool):
            engine = DedupEngine(
                num_buckets=256, compressor=create_codec(name), pool=pool
            )
            engine.write_many(requests)
            reads = [engine.read(lba, 1).data for lba, _ in requests]
            return reads, engine.stats_snapshot()

        serial_reads, serial_stats = run(None)
        assert serial_reads == [data for _, data in requests]

        for backend in ("thread", "process"):
            pool = StagePool(2, backend=backend)
            try:
                reads, stats = run(pool)
            finally:
                pool.shutdown()
            assert reads == serial_reads, backend
            assert stats == serial_stats, backend


# -- fingerprinter registry -------------------------------------------------


class TestFingerprinterRegistry:
    def test_builtin_names(self):
        assert "sha256" in fingerprinter_names()
        assert "blake3" in fingerprinter_names()
        assert "sha256" in available_fingerprinters()

    def test_sha256_matches_module_functions(self, rng):
        algo = create_fingerprinter("sha256")
        assert isinstance(algo, Sha256Fingerprinter)
        data = make_chunk(rng, CHUNK)
        assert algo.digest(data) == fingerprint(data)
        batch = corpus(rng, 5)
        assert algo.digest_many(batch) == fingerprint_many(batch)

    def test_unknown_name_is_a_value_error(self):
        with pytest.raises(ValueError, match="unknown fingerprinter"):
            create_fingerprinter("md5")

    def test_missing_blake3_raises_typed_error(self, monkeypatch):
        monkeypatch.setattr(hashing, "blake3", None)
        assert "blake3" not in available_fingerprinters()
        with pytest.raises(MissingDependencyError, match="codecs"):
            create_fingerprinter("blake3")

    def test_wrong_digest_width_is_rejected(self):
        class Short(Fingerprinter):
            name = "short"
            digest_size = 16

            def digest(self, data) -> bytes:
                return fingerprint(data)[:16]

        register_fingerprinter("short16", Short)
        try:
            with pytest.raises(ValueError, match="32"):
                create_fingerprinter("short16")
        finally:
            hashing._FINGERPRINTERS.pop("short16", None)

    def test_duplicate_registration_is_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_fingerprinter("sha256", Sha256Fingerprinter)

    def test_digest_many_fans_out_on_thread_pools_only(self, rng):
        algo = create_fingerprinter("sha256")
        batch = corpus(rng, 6)
        expected = [fingerprint(data) for data in batch]
        thread_pool = StagePool(2, backend="thread")
        process_pool = StagePool(2, backend="process")
        try:
            assert algo.digest_many(batch, pool=thread_pool) == expected
            # Process pools hash inline (pickling 4-KB buffers costs
            # more than SHA-256 does) — results identical either way.
            assert algo.digest_many(batch, pool=process_pool) == expected
        finally:
            thread_pool.shutdown()
            process_pool.shutdown()

    def test_engine_accepts_an_injected_fingerprinter(self, rng):
        default = DedupEngine(num_buckets=256)
        injected = DedupEngine(
            num_buckets=256, fingerprinter=create_fingerprinter("sha256")
        )
        data = make_chunk(rng, CHUNK)
        default.write(0, data)
        default.write(8, data)
        injected.write(0, data)
        injected.write(8, data)
        assert injected.stats_snapshot() == default.stats_snapshot()


# -- real optional libraries (run only on the extras CI leg) -----------------


@pytest.mark.skipif(not codec_available("zstd"), reason="zstandard not installed")
class TestZstdCodec:
    def test_roundtrip_and_tag(self, rng):
        codec = create_codec("zstd")
        data = make_compressible_chunk(rng, CHUNK)
        chunk = codec.compress(data)
        assert chunk.prefix == bytes([TAG_ZSTD])
        assert chunk.stored_size == 1 + len(chunk.payload)
        assert chunk.stored_size < CHUNK
        assert decode_chunk(chunk) == data
        assert decode_chunk(as_container_chunk(chunk)) == data

    def test_incompressible_takes_the_raw_escape(self, rng):
        chunk = create_codec("zstd").compress(make_chunk(rng, CHUNK))
        assert chunk.prefix == bytes([TAG_RAW])

    def test_level_validation(self):
        with pytest.raises(ValueError, match="level"):
            create_codec("zstd", level=23)

    def test_pickles_for_process_pools(self, rng):
        import pickle

        codec = create_codec("zstd", level=5)
        clone = pickle.loads(pickle.dumps(codec))
        assert clone.level == 5
        data = make_compressible_chunk(rng, CHUNK)
        assert clone.decompress(clone.compress(data)) == data

    def test_trained_dictionary_needs_the_fallback_path(self, rng):
        base = create_codec("zstd")
        samples = [make_compressible_chunk(rng, CHUNK) for _ in range(64)]
        trained = base.train(samples)
        assert trained.dictionary
        data = samples[0]
        chunk = trained.compress(data)
        if chunk.prefix == bytes([TAG_ZSTD]):
            # Dictionary-bound frames decode only through a codec that
            # carries the same dictionary — the engine's fallback.
            assert decode_chunk(chunk, trained) == data
            assert trained.decompress(chunk) == data


@pytest.mark.skipif(not codec_available("lz4"), reason="lz4 not installed")
class TestLz4Codec:
    def test_roundtrip_and_tag(self, rng):
        codec = create_codec("lz4")
        data = make_compressible_chunk(rng, CHUNK)
        chunk = codec.compress(data)
        assert chunk.prefix == bytes([TAG_LZ4])
        assert decode_chunk(chunk) == data
        assert decode_chunk(as_container_chunk(chunk)) == data

    def test_acceleration_validation(self):
        with pytest.raises(ValueError, match="acceleration"):
            create_codec("lz4", acceleration=0)

    def test_adaptive_routes_medium_entropy_here(self, rng):
        codec = AdaptiveCodec()
        assert codec.fast.name == "lz4"
        data = make_compressible_chunk(rng, CHUNK)
        assert decode_chunk(codec.compress(data)) == data


@pytest.mark.skipif(
    not hashing.fingerprinter_available("blake3"),
    reason="blake3 not installed",
)
class TestBlake3Fingerprinter:
    def test_digest_width_and_determinism(self, rng):
        algo = create_fingerprinter("blake3")
        data = make_chunk(rng, CHUNK)
        digest = algo.digest(data)
        assert len(digest) == FINGERPRINT_SIZE
        assert digest == algo.digest(data)
        assert digest != fingerprint(data)

"""Tests for chunk fingerprinting and encodings."""

import hashlib

import pytest
from hypothesis import given, strategies as st

from repro.datared.hashing import (
    FINGERPRINT_SIZE,
    MAX_PBN,
    PBN_SIZE,
    bucket_index,
    decode_pbn,
    encode_pbn,
    fingerprint,
    fingerprint_many,
)


class TestFingerprint:
    def test_matches_sha256(self):
        data = b"hello world"
        assert fingerprint(data) == hashlib.sha256(data).digest()

    def test_width(self):
        assert len(fingerprint(b"x")) == FINGERPRINT_SIZE == 32

    def test_deterministic(self):
        assert fingerprint(b"abc") == fingerprint(b"abc")

    def test_content_sensitivity(self):
        assert fingerprint(b"a" * 4096) != fingerprint(b"a" * 4095 + b"b")

    def test_batch_matches_individual(self):
        chunks = [b"one", b"two", b"three"]
        assert fingerprint_many(chunks) == [fingerprint(c) for c in chunks]


class TestBucketIndex:
    def test_in_range(self):
        for i in range(100):
            index = bucket_index(fingerprint(str(i).encode()), 37)
            assert 0 <= index < 37

    def test_deterministic(self):
        digest = fingerprint(b"stable")
        assert bucket_index(digest, 1024) == bucket_index(digest, 1024)

    def test_roughly_uniform(self):
        buckets = 16
        counts = [0] * buckets
        for i in range(4000):
            counts[bucket_index(fingerprint(str(i).encode()), buckets)] += 1
        expected = 4000 / buckets
        assert all(0.7 * expected < count < 1.3 * expected for count in counts)

    def test_validation(self):
        with pytest.raises(ValueError):
            bucket_index(fingerprint(b"x"), 0)
        with pytest.raises(ValueError):
            bucket_index(b"short", 10)

    @given(st.binary(min_size=32, max_size=32), st.integers(1, 1 << 20))
    def test_always_in_range(self, digest, buckets):
        assert 0 <= bucket_index(digest, buckets) < buckets


class TestPbnEncoding:
    @given(st.integers(min_value=0, max_value=MAX_PBN))
    def test_roundtrip(self, pbn):
        assert decode_pbn(encode_pbn(pbn)) == pbn

    def test_width(self):
        assert len(encode_pbn(0)) == PBN_SIZE == 6

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            encode_pbn(-1)
        with pytest.raises(ValueError):
            encode_pbn(MAX_PBN + 1)

    def test_decode_validates_width(self):
        with pytest.raises(ValueError):
            decode_pbn(b"\x00" * 5)

    def test_pbn_space_covers_petabytes(self):
        # 2^48 chunks x 4 KB each is far beyond PB scale (§2.1.3).
        assert (MAX_PBN + 1) * 4096 >= 10**15

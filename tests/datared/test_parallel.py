"""Tests for the stage-split parallel data path.

Covers the :class:`~repro.parallel.StagePool` fan-out primitive, the
pool-aware ``fingerprint_many``, the incrementally-maintained
``WriteReport`` aggregates, and — the load-bearing property of the whole
design — the differential guarantee that the batched parallel write/read
path is *indistinguishable* from the serial per-chunk path: same bytes,
same reports, same :class:`~repro.datared.dedup.ReductionStats`.
"""

from __future__ import annotations

import random
import threading

import pytest

from repro.analysis.invariants import check_engine
from repro.datared.chunking import BLOCK_SIZE
from repro.datared.compression import ZlibCompressor
from repro.datared.dedup import (
    ChunkOutcome,
    DedupEngine,
    WriteOptions,
    WriteReport,
)
from repro.datared.hash_pbn import HashPbnTable
from repro.datared.hashing import fingerprint, fingerprint_many
from repro.parallel import StagePool

CHUNK = 4096
BLOCKS = CHUNK // BLOCK_SIZE  #: LBA step between adjacent chunk slots


class TestStagePool:
    def test_serial_pool_has_no_threads(self):
        pool = StagePool(1)
        assert not pool.is_parallel
        main = threading.current_thread().name
        names = pool.map(lambda _: threading.current_thread().name, range(64))
        assert set(names) == {main}

    def test_parallelism_clamped_to_one(self):
        assert not StagePool(0).is_parallel
        assert not StagePool(-3).is_parallel

    def test_order_preserved_and_complete(self):
        with StagePool(4) as pool:
            items = list(range(1000))
            assert pool.map(lambda x: x * 2, items) == [x * 2 for x in items]

    def test_parallel_map_matches_serial_map(self):
        rng = random.Random(7)
        chunks = [rng.randbytes(CHUNK) for _ in range(100)]
        with StagePool(4) as pool:
            assert pool.map(fingerprint, chunks) == [
                fingerprint(c) for c in chunks
            ]

    def test_small_batches_run_inline(self):
        """Below ``min_slice_items`` items-per-slice there is nothing to
        amortize the dispatch over, so the map must not hit the pool."""
        with StagePool(8, min_slice_items=8) as pool:
            main = threading.current_thread().name
            names = pool.map(
                lambda _: threading.current_thread().name, range(8)
            )
            assert set(names) == {main}

    def test_large_batches_use_worker_threads(self):
        with StagePool(4) as pool:
            main = threading.current_thread().name
            names = set(
                pool.map(lambda _: threading.current_thread().name, range(256))
            )
            assert main not in names
            assert all(name.startswith("repro-stage") for name in names)

    def test_exceptions_propagate(self):
        with StagePool(2) as pool:
            with pytest.raises(ZeroDivisionError):
                pool.map(lambda x: 1 // (x - 50), range(100))

    def test_shutdown_is_idempotent(self):
        pool = StagePool(2)
        pool.shutdown()
        pool.shutdown()
        assert not pool.is_parallel
        # A shut-down pool still maps, just inline.
        assert pool.map(lambda x: x + 1, range(20)) == list(range(1, 21))

    def test_rejects_bad_knobs(self):
        with pytest.raises(ValueError):
            StagePool(2, slices_per_worker=0)
        with pytest.raises(ValueError):
            StagePool(2, min_slice_items=0)
        with pytest.raises(ValueError):
            StagePool(2, backend="fiber")

    def test_min_batch_runs_inline(self):
        """Batches below ``min_batch`` stay on the calling thread even
        on a wide pool — the read path's small-batch guard."""
        with StagePool(8) as pool:
            main = threading.current_thread().name
            names = pool.map(
                lambda _: threading.current_thread().name,
                range(64),
                min_batch=128,
            )
            assert set(names) == {main}
            # At or above the threshold the pool takes over again.
            names = set(
                pool.map(
                    lambda _: threading.current_thread().name,
                    range(128),
                    min_batch=128,
                )
            )
            assert main not in names

    def test_requires_pickling_flags_only_live_process_pools(self):
        serial = StagePool(1, backend="process")
        assert not serial.requires_pickling  # no workers, runs inline
        with StagePool(4) as threads:
            assert not threads.requires_pickling
        pool = StagePool(2, backend="process")
        try:
            assert pool.is_parallel
            assert pool.requires_pickling
        finally:
            pool.shutdown()
        assert not pool.requires_pickling  # shut down -> inline again

    def test_process_backend_map_matches_serial(self):
        rng = random.Random(11)
        chunks = [rng.randbytes(CHUNK) for _ in range(64)]
        with StagePool(2, backend="process") as pool:
            # The callable crosses the IPC boundary, so it must be a
            # module-level function — fingerprint qualifies.
            assert pool.map(fingerprint, chunks) == [
                fingerprint(c) for c in chunks
            ]


class TestFingerprintMany:
    def test_matches_singles(self, rng):
        chunks = [rng.randbytes(CHUNK) for _ in range(32)]
        assert fingerprint_many(chunks) == [fingerprint(c) for c in chunks]

    def test_pool_routing_is_equivalent(self, rng):
        chunks = [rng.randbytes(CHUNK) for _ in range(200)]
        with StagePool(4) as pool:
            assert fingerprint_many(chunks, pool=pool) == fingerprint_many(
                chunks
            )


class TestWriteReportAggregates:
    @staticmethod
    def outcome(lba, duplicate, stored):
        return ChunkOutcome(
            lba=lba,
            pbn=lba + 100,
            duplicate=duplicate,
            logical_size=CHUNK,
            stored_size=stored,
        )

    def test_add_maintains_totals(self):
        report = WriteReport()
        report.add(self.outcome(0, False, 2000))
        report.add(self.outcome(8, True, 0))
        report.add(self.outcome(16, False, 1500))
        assert report.logical_bytes == 3 * CHUNK
        assert report.stored_bytes == 3500
        assert report.unique_chunks == 2
        assert report.duplicate_chunks == 1

    def test_post_init_tallies_presupplied_chunks(self):
        outcomes = [self.outcome(0, False, 1000), self.outcome(8, True, 0)]
        report = WriteReport(chunks=list(outcomes))
        assert report.logical_bytes == 2 * CHUNK
        assert report.stored_bytes == 1000
        assert report.unique_chunks == 1
        assert report.duplicate_chunks == 1

    def test_aggregates_match_recompute(self, rng):
        report = WriteReport()
        for i in range(50):
            report.add(
                self.outcome(
                    i * 8, rng.random() < 0.4, rng.randrange(500, 4000)
                )
            )
        assert report.logical_bytes == sum(
            o.logical_size for o in report.chunks
        )
        assert report.stored_bytes == sum(
            o.stored_size for o in report.chunks
        )
        assert report.unique_chunks == sum(
            1 for o in report.chunks if not o.duplicate
        )


# -- differential: parallel batched path vs. serial per-chunk path ------------


def make_request_stream(
    rng: random.Random,
    *,
    dedup_fraction: float,
    zero_fill: int,
    num_requests: int = 72,
    region_chunks: int = 24,
):
    """(lba, payload) request stream with tunable duplicate rate and
    compressibility.  LBAs revisit a small region, so later requests
    overwrite earlier ones — including across any batching boundary the
    batched engine uses."""

    def payload() -> bytes:
        return rng.randbytes(CHUNK - zero_fill) + bytes(zero_fill)

    pool = [payload() for _ in range(6)]
    requests = []
    for _ in range(num_requests):
        lba = rng.randrange(region_chunks) * BLOCKS
        if rng.random() < dedup_fraction:
            data = pool[rng.randrange(len(pool))]
        else:
            data = payload()
        requests.append((lba, data))
    return requests


def reports_equal(left: WriteReport, right: WriteReport) -> bool:
    return (
        left.chunks == right.chunks
        and left.containers_sealed == right.containers_sealed
        and left.logical_bytes == right.logical_bytes
        and left.stored_bytes == right.stored_bytes
        and left.unique_chunks == right.unique_chunks
        and left.duplicate_chunks == right.duplicate_chunks
    )


@pytest.mark.parametrize("dedup_fraction", [0.0, 0.5, 0.9])
@pytest.mark.parametrize("zero_fill", [0, CHUNK // 2, CHUNK - 64])
@pytest.mark.parametrize("batch_size", [7, 16])
def test_write_many_is_indistinguishable_from_serial(
    dedup_fraction, zero_fill, batch_size
):
    """The grid: dedup fraction x compressibility x batch size.  An odd
    batch size (7) guarantees overwrites straddle batch boundaries."""
    rng = random.Random(hash((dedup_fraction, zero_fill, batch_size)) & 0xFFFF)
    requests = make_request_stream(
        rng, dedup_fraction=dedup_fraction, zero_fill=zero_fill
    )

    serial = DedupEngine(num_buckets=512, compressor=ZlibCompressor())
    serial_reports = [serial.write(lba, data) for lba, data in requests]

    with StagePool(4) as pool:
        batched = DedupEngine(
            num_buckets=512, compressor=ZlibCompressor(), pool=pool
        )
        batched_reports = []
        for start in range(0, len(requests), batch_size):
            batched_reports.extend(
                batched.write_many(requests[start : start + batch_size])
            )

    assert len(serial_reports) == len(batched_reports)
    for left, right in zip(serial_reports, batched_reports):
        assert reports_equal(left, right)
    assert serial.stats == batched.stats
    assert serial.table.entry_count == batched.table.entry_count

    # Planner never diverged from execution on any grid cell.
    assert batched.plan_fallback_compressions == 0
    assert batched.plan_wasted_compressions == 0

    # Both engines obey every ledger/index conservation law.
    assert check_engine(serial) == []
    assert check_engine(batched) == []

    # Byte-identical read-back, through both engines' read paths.
    for chunk_index in range(24):
        lba = chunk_index * BLOCKS
        assert serial.read(lba).data == batched.read(lba).data
    # And the batched multi-chunk (parallel-decompress) read agrees.
    assert (
        batched.read(0, 24).data
        == b"".join(serial.read(i * BLOCKS).data for i in range(24))
    )

    # PR-9 packed-vs-legacy differential on the same grid cell: an
    # engine pinned to the pre-PR-9 index configuration (decoded
    # buckets, no negative filter, per-chunk resolve) must be byte-
    # and ledger-identical to the default packed+batched engine above
    # — including every stored 4-KB table page.
    legacy = DedupEngine(
        table=HashPbnTable(512, packed=False, negative_filter=False),
        compressor=ZlibCompressor(),
        batched_resolve=False,
    )
    assert not legacy.batched_resolve
    legacy_reports = []
    for start in range(0, len(requests), batch_size):
        legacy_reports.extend(
            legacy.write_many(requests[start : start + batch_size])
        )
    for left, right in zip(batched_reports, legacy_reports):
        assert reports_equal(left, right)
    assert legacy.stats == batched.stats
    assert legacy.table.entry_count == batched.table.entry_count
    for index in range(512):
        assert (
            legacy.table.store.read_bucket(index)
            == batched.table.store.read_bucket(index)
        )
    assert check_engine(legacy) == []
    assert legacy.read(0, 24).data == batched.read(0, 24).data


@pytest.mark.parametrize("zero_fill", [0, CHUNK - 64])
def test_write_many_process_pool_is_indistinguishable_from_serial(zero_fill):
    """Differential identity across the IPC boundary: chunk payloads
    pickle to worker processes, compress there with per-process deflate
    state, and pickle back — bytes, reports, and stats must still match
    the serial engine.  ``zero_fill=0`` makes most chunks incompressible
    so the raw view-payload escape path crosses the boundary too."""
    rng = random.Random(0xACE0 + zero_fill)
    requests = make_request_stream(
        rng, dedup_fraction=0.5, zero_fill=zero_fill
    )

    serial = DedupEngine(num_buckets=512, compressor=ZlibCompressor())
    serial_reports = [serial.write(lba, data) for lba, data in requests]

    with StagePool(2, backend="process") as pool:
        batched = DedupEngine(
            num_buckets=512, compressor=ZlibCompressor(), pool=pool
        )
        batched_reports = []
        for start in range(0, len(requests), 16):
            batched_reports.extend(
                batched.write_many(requests[start : start + 16])
            )

    assert len(serial_reports) == len(batched_reports)
    for left, right in zip(serial_reports, batched_reports):
        assert reports_equal(left, right)
    assert serial.stats == batched.stats
    assert batched.plan_fallback_compressions == 0
    assert check_engine(serial) == []
    assert check_engine(batched) == []
    assert (
        batched.read(0, 24).data
        == b"".join(serial.read(i * BLOCKS).data for i in range(24))
    )


def test_write_many_intra_batch_retire_then_rewrite():
    """The planner corner: one batch both releases the last reference to
    a fingerprint and then writes that same content again.  The serial
    walk stores it anew; the plan must predict that, not call it a
    duplicate of the retired PBN."""
    data_x = bytes([1]) * CHUNK
    data_y = bytes([2]) * CHUNK

    serial = DedupEngine(num_buckets=64)
    batched = DedupEngine(num_buckets=64, pool=StagePool(2))
    try:
        for engine, writer in (
            (serial, lambda reqs: [engine.write(*r) for r in reqs]),
            (batched, lambda reqs: engine.write_many(reqs)),
        ):
            writer([(0, data_x)])  # lone reference to X
            # One batch: retire X (overwrite LBA 0), then write X again.
            writer([(0, data_y), (BLOCKS, data_x)])
        assert serial.stats == batched.stats
        assert serial.read(0).data == batched.read(0).data
        assert serial.read(BLOCKS).data == batched.read(BLOCKS).data
        assert batched.plan_fallback_compressions == 0
        assert batched.plan_wasted_compressions == 0
    finally:
        batched.pool.shutdown()


def test_write_many_with_precomputed_digests(rng):
    """The NIC-offload entry point: callers may hand digests in."""
    requests = [
        (i * BLOCKS, rng.randbytes(CHUNK)) for i in range(8)
    ]
    digests = [fingerprint(data) for _, data in requests]

    plain = DedupEngine(num_buckets=64)
    offloaded = DedupEngine(num_buckets=64)
    plain_reports = plain.write_many(requests)
    offload_reports = offloaded.write_many(
        requests, WriteOptions(digests=digests)
    )
    for left, right in zip(plain_reports, offload_reports):
        assert left.chunks == right.chunks
    assert plain.stats == offloaded.stats

    with pytest.raises(ValueError):
        offloaded.write_many(requests, WriteOptions(digests=digests[:-1]))

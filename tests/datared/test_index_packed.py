"""Packed-index differential and property suite (DESIGN.md §5.9).

Proves the three PR-9 index claims the rest of the stack now relies on:

* :class:`PackedBucket` is **byte-identical** to the legacy decoded
  :class:`Bucket` after any operation history (the on-disk format never
  changed);
* the sticky per-bucket overflow bit keeps every lookup/remove correct
  across random insert/delete/overflow-probe histories, packed and
  legacy alike;
* the :class:`NegativeFilter` never produces a false negative, and
  :meth:`HashPbnTable.lookup_many` returns exactly what per-call
  lookups would.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.datared.hash_pbn import (
    BUCKET_CAPACITY,
    BUCKET_SIZE,
    ArenaBucketStore,
    Bucket,
    BucketStore,
    HashPbnTable,
    InMemoryBucketStore,
    NegativeFilter,
    PackedBucket,
)
from repro.datared.hashing import fingerprint
from repro.errors import BucketFullError, CapacityError, ErrorCode, error_code_for


def digest_of(i: int) -> bytes:
    return fingerprint(str(i).encode())


#: A random bucket-level operation: (op, key, pbn).
_BUCKET_OPS = st.lists(
    st.tuples(
        st.sampled_from(["insert", "remove", "update", "lookup"]),
        st.integers(0, 30),
        st.integers(0, 2**48 - 1),
    ),
    max_size=150,
)


class TestPackedBucket:
    def test_empty_page_is_legacy_empty_page(self):
        assert PackedBucket.empty().to_bytes() == Bucket().to_bytes()

    def test_insert_lookup_remove_update(self):
        bucket = PackedBucket.empty()
        bucket.insert(digest_of(1), 11)
        assert bucket.lookup(digest_of(1)) == 11
        assert bucket.lookup(digest_of(2)) is None
        assert bucket.update(digest_of(1), 42)
        assert bucket.lookup(digest_of(1)) == 42
        assert not bucket.update(digest_of(2), 1)
        assert bucket.remove(digest_of(1))
        assert not bucket.remove(digest_of(1))
        assert bucket.entry_count == 0

    def test_full_bucket_raises_typed_error(self):
        bucket = PackedBucket.empty()
        for i in range(BUCKET_CAPACITY):
            bucket.insert(digest_of(i), i)
        assert bucket.is_full
        with pytest.raises(BucketFullError):
            bucket.insert(digest_of(9999), 0)

    def test_digest_length_enforced(self):
        # A wrong-length slice assignment would silently resize the
        # backing page; both insert and lookup must reject it instead.
        bucket = PackedBucket.empty()
        with pytest.raises(ValueError):
            bucket.insert(b"short", 1)
        with pytest.raises(ValueError):
            bucket.lookup(b"short")
        assert len(bucket.buf) == BUCKET_SIZE

    def test_overflow_flag_roundtrip(self):
        bucket = PackedBucket.empty()
        assert not bucket.overflowed
        bucket.overflowed = True
        assert bucket.overflowed
        assert Bucket.from_bytes(bucket.to_bytes()).overflowed
        bucket.overflowed = False
        assert not bucket.overflowed

    def test_from_page_validates(self):
        with pytest.raises(ValueError):
            PackedBucket.from_page(b"\x00" * 100)
        page = bytearray(BUCKET_SIZE)
        page[0:2] = (60000).to_bytes(2, "big")
        with pytest.raises(ValueError):
            PackedBucket.from_page(bytes(page))

    def test_misaligned_fingerprint_match_skipped(self):
        # Craft two entries whose concatenation contains the probe
        # digest at a non-entry offset: the aligned scan must not be
        # fooled by it.
        bucket = PackedBucket.empty()
        needle = bytes(range(32))
        # Entry 0's trailing bytes + entry 1's leading bytes spell the
        # needle across the 38-byte boundary.
        first = b"\xaa" * 26 + needle[:6]
        pbn_bytes = needle[6:12]
        second = needle[12:] + b"\xbb" * 12
        bucket.insert(first, int.from_bytes(pbn_bytes, "big"))
        bucket.insert(second, 7)
        assert bucket.lookup(needle) is None
        assert bucket.lookup(first) == int.from_bytes(pbn_bytes, "big")
        assert bucket.lookup(second) == 7

    @settings(max_examples=50, deadline=None)
    @given(_BUCKET_OPS)
    def test_differential_vs_legacy_bucket(self, operations):
        """Any op history leaves packed and legacy pages byte-identical."""
        legacy = Bucket()
        packed = PackedBucket.empty()
        for op, key, pbn in operations:
            digest = digest_of(key)
            if op == "insert":
                if legacy.lookup(digest) is None and not legacy.is_full:
                    legacy.insert(digest, pbn)
                    packed.insert(digest, pbn)
            elif op == "remove":
                assert legacy.remove(digest) == packed.remove(digest)
            elif op == "update":
                assert legacy.update(digest, pbn) == packed.update(digest, pbn)
            else:
                assert legacy.lookup(digest) == packed.lookup(digest)
            assert legacy.to_bytes() == packed.to_bytes()
            assert legacy.entries == packed.entries
            assert legacy.entry_count == packed.entry_count


#: A random table-level operation over a keyspace wide enough that a
#: 2-bucket table regularly overflows a home bucket (hypothesis then
#: exercises probing, sticky bits, and removal through chains).
_TABLE_OPS = st.lists(
    st.tuples(
        st.sampled_from(["insert", "remove", "update", "lookup"]),
        st.integers(0, 200),
    ),
    max_size=300,
)


def _pages(table: HashPbnTable) -> list:
    return [table.store.read_bucket(i) for i in range(table.num_buckets)]


class TestPackedVsLegacyTable:
    @settings(max_examples=30, deadline=None)
    @given(_TABLE_OPS)
    def test_random_histories_differential(self, operations):
        """Packed and legacy tables agree on results AND stored bytes.

        Covers the sticky-overflow-bit property: histories that
        overfill a home bucket force probe chains; deletions then empty
        buckets mid-chain without clearing the bit, and every
        subsequent lookup/remove must still resolve identically in
        both representations (and against the dict model).
        """
        packed = HashPbnTable(2, packed=True, negative_filter=False)
        legacy = HashPbnTable(2, packed=False, negative_filter=False)
        model = {}
        for op, key in operations:
            digest = digest_of(key)
            if op == "insert":
                if key not in model and len(model) < 2 * BUCKET_CAPACITY:
                    packed.insert(digest, key)
                    legacy.insert(digest, key)
                    model[key] = key
            elif op == "remove":
                removed = packed.remove(digest)
                assert removed == legacy.remove(digest) == (key in model)
                model.pop(key, None)
            elif op == "update":
                updated = packed.update(digest, key + 1)
                assert updated == legacy.update(digest, key + 1)
                if key in model:
                    model[key] = key + 1
            else:
                hit = packed.lookup(digest)
                assert hit == legacy.lookup(digest) == model.get(key)
        assert len(packed) == len(legacy) == len(model)
        assert packed.probe_count == legacy.probe_count
        assert _pages(packed) == _pages(legacy)

    def test_sticky_overflow_survives_emptying(self):
        """The overflow bit outlives the entries that set it.

        Fill a 2-bucket table past one bucket's capacity, then remove
        every entry that *lives in* the overflowed home bucket: the
        bucket is empty but its sticky bit must keep lookups probing
        past it to the spilled entries — in both representations.
        """
        for packed_mode in (True, False):
            table = HashPbnTable(
                2, packed=packed_mode, negative_filter=False
            )
            keys = list(range(2 * BUCKET_CAPACITY))
            for key in keys:
                table.insert(digest_of(key), key)
            # Both buckets are full; both carry the overflow bit only
            # if an insert actually probed past them.
            flags = [
                Bucket.from_bytes(table.store.read_bucket(i)).overflowed
                for i in range(2)
            ]
            assert any(flags)
            overflowed_home = flags.index(True)
            victims = [
                key for key in keys
                if table._home(digest_of(key)) == overflowed_home
            ]
            spilled = [key for key in keys if key not in set(victims)]
            for key in victims:
                assert table.remove(digest_of(key))
            assert Bucket.from_bytes(
                table.store.read_bucket(overflowed_home)
            ).overflowed
            for key in spilled:
                assert table.lookup(digest_of(key)) == key

    def test_arena_store_differential(self):
        """Arena-backed packed table matches the dict-backed legacy."""
        arena = HashPbnTable(4, store=ArenaBucketStore(4))
        legacy = HashPbnTable(4, packed=False, negative_filter=False)
        keys = list(range(150))
        for key in keys:
            arena.insert(digest_of(key), key)
            legacy.insert(digest_of(key), key)
        for key in keys[::3]:
            assert arena.remove(digest_of(key))
            assert legacy.remove(digest_of(key))
        for key in keys:
            assert arena.lookup(digest_of(key)) == legacy.lookup(digest_of(key))
        assert _pages(arena) == _pages(legacy)


class TestArenaBucketStore:
    def test_zero_copy_mutation_persists(self):
        store = ArenaBucketStore(4)
        bucket = store.load_packed(2)
        bucket.insert(digest_of(1), 5)
        # No store_packed call: the cursor IS the arena page.
        assert store.load_packed(2).lookup(digest_of(1)) == 5
        assert Bucket.from_bytes(store.read_bucket(2)).entries == [
            (digest_of(1), 5)
        ]

    def test_foreign_page_copied_in(self):
        store = ArenaBucketStore(2)
        foreign = PackedBucket.empty()
        foreign.insert(digest_of(7), 9)
        store.store_packed(1, foreign)
        assert store.load_packed(1).lookup(digest_of(7)) == 9

    def test_bounds_checked(self):
        store = ArenaBucketStore(2)
        with pytest.raises(IndexError):
            store.read_bucket(2)
        with pytest.raises(IndexError):
            store.load_packed(-1)

    def test_io_counted(self):
        store = ArenaBucketStore(2)
        store.load_packed(0)
        store.store_packed(0, store.load_packed(0))
        store.read_bucket(1)
        store.write_bucket(1, Bucket().to_bytes())
        assert store.reads == 3
        assert store.writes == 2


class TestNegativeFilter:
    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(
            st.tuples(st.booleans(), st.integers(0, 60)), max_size=200
        ),
        st.booleans(),
    )
    def test_no_false_negatives(self, operations, dense):
        """A digest whose prefix is resident always answers "maybe"."""
        nf = NegativeFilter(4, dense=dense)
        model = {}  # (home, prefix) -> count
        for is_add, key in operations:
            digest = digest_of(key)
            home = key % 4
            slot = (home, digest[:2])
            if is_add:
                nf.add(home, digest)
                model[slot] = model.get(slot, 0) + 1
            else:
                nf.discard(home, digest)
                if model.get(slot, 0) > 0:
                    model[slot] -= 1
            for (h, prefix), count in model.items():
                if count > 0:
                    probe = prefix + digest_of(0)[:30]
                    assert nf.might_contain(h, probe)

    def test_absent_prefix_filters(self):
        nf = NegativeFilter(2)
        nf.add(0, digest_of(1))
        other = digest_of(2)
        assume_differs = other[:2] != digest_of(1)[:2]
        if assume_differs:
            assert not nf.might_contain(0, other)
        assert not nf.might_contain(1, digest_of(1))

    def test_dense_saturation_is_sticky(self):
        nf = NegativeFilter(1, dense=True)
        for i in range(BUCKET_CAPACITY + 1):
            nf.add(0, digest_of(i))
        # Saturated: everything answers "maybe", discards are no-ops.
        assert nf.might_contain(0, digest_of(12345))
        nf.discard(0, digest_of(0))
        assert nf.might_contain(0, digest_of(0))
        assert nf.might_contain(0, digest_of(54321))

    def test_table_results_identical_with_filter(self):
        with_filter = HashPbnTable(8, negative_filter=True)
        without = HashPbnTable(8, negative_filter=False)
        for key in range(120):
            with_filter.insert(digest_of(key), key)
            without.insert(digest_of(key), key)
        for key in range(90):
            assert with_filter.remove(digest_of(key)) == without.remove(
                digest_of(key)
            )
        for key in range(200):
            assert with_filter.lookup(digest_of(key)) == without.lookup(
                digest_of(key)
            )
        assert with_filter.filter_hits > 0
        # The filter elides probes, never adds them.
        assert with_filter.probe_count <= without.probe_count


class TestLookupMany:
    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(st.integers(0, 120), max_size=80),
        st.lists(st.integers(0, 240), max_size=60),
    )
    def test_matches_per_call_lookup(self, inserted, probed):
        table = HashPbnTable(4)
        for key in set(inserted):
            table.insert(digest_of(key), key)
        batch = [digest_of(key) for key in probed]
        assert table.lookup_many(batch) == [
            table.lookup(digest) for digest in batch
        ]

    def test_empty_batch(self):
        assert HashPbnTable(4).lookup_many([]) == []

    def test_intra_batch_dedupe_counted(self):
        table = HashPbnTable(4)
        table.insert(digest_of(1), 1)
        batch = [digest_of(1)] * 5 + [digest_of(2)] * 3
        assert table.lookup_many(batch) == [1] * 5 + [None] * 3
        assert table.saved_batch_lookups == 6  # 8 digests, 2 unique

    def test_bucket_loaded_once_per_batch(self):
        # Many digests landing in the same bucket cost one store read.
        table = HashPbnTable(1, negative_filter=False)
        store = table.store
        assert isinstance(store, InMemoryBucketStore)
        for key in range(10):
            table.insert(digest_of(key), key)
        reads_before = store.reads
        table.lookup_many([digest_of(key) for key in range(10)])
        assert store.reads == reads_before + 1

    def test_arena_store_batch(self):
        table = HashPbnTable(4, store=ArenaBucketStore(4))
        for key in range(50):
            table.insert(digest_of(key), key)
        batch = [digest_of(key) for key in range(100)]
        assert table.lookup_many(batch) == [
            key if key < 50 else None for key in range(100)
        ]
        assert table.filter_hits > 0


class TestAutoRules:
    def test_private_stores_arm_filter(self):
        assert HashPbnTable(4).filter is not None
        assert HashPbnTable(4, store=ArenaBucketStore(4)).filter is not None
        assert HashPbnTable(4, store=ArenaBucketStore(4)).filter.dense

    def test_interposing_store_disarms_filter(self):
        class Interposer(BucketStore):
            def __init__(self):
                self.pages = {}

            def read_bucket(self, index):
                return self.pages.get(index, Bucket().to_bytes())

            def write_bucket(self, index, page):
                self.pages[index] = page

        table = HashPbnTable(4, store=Interposer())
        assert table.filter is None
        assert not table.private_store
        # Explicit override still wins.
        assert HashPbnTable(4, store=Interposer(), negative_filter=True
                            ).filter is not None


class TestEngineBatchedResolve:
    def test_intra_batch_dedupe_surfaces_in_stats(self):
        from repro.datared.dedup import DedupEngine

        engine = DedupEngine(num_buckets=64)
        assert engine.batched_resolve  # private in-memory store → auto-on
        step = engine.chunker.blocks_per_chunk
        payload = b"\xcd" * 4096
        engine.write_many([(i * step, payload) for i in range(8)])
        snap = engine.stats_snapshot()
        # Eight identical digests resolve as one table probe + seven
        # saved lookups, and the absent-digest probe was a filter hit.
        assert snap.index_saved_lookups == 7
        assert snap.index_filter_hits >= 1
        assert snap.index_probes >= 1
        assert snap.duplicate_chunks == 7
        assert snap.unique_chunks == 1

    def test_batched_resolve_off_for_interposing_store(self):
        from repro.datared.dedup import DedupEngine

        class Interposer(BucketStore):
            def __init__(self):
                self.pages = {}

            def read_bucket(self, index):
                return self.pages.get(index, Bucket().to_bytes())

            def write_bucket(self, index, page):
                self.pages[index] = page

        engine = DedupEngine(table=HashPbnTable(64, store=Interposer()))
        assert not engine.batched_resolve
        step = engine.chunker.blocks_per_chunk
        engine.write_many([(i * step, b"\xab" * 4096) for i in range(4)])
        snap = engine.stats_snapshot()
        assert snap.index_saved_lookups == 0
        assert snap.index_filter_hits == 0
        assert snap.duplicate_chunks == 3


class TestBucketFullErrorMapping:
    def test_legacy_bucket_raises_typed_error(self):
        bucket = Bucket()
        for i in range(BUCKET_CAPACITY):
            bucket.insert(digest_of(i), i)
        with pytest.raises(BucketFullError):
            bucket.insert(digest_of(9999), 0)

    def test_stays_a_value_error_and_capacity_error(self):
        # Regression: pre-PR-9 callers caught bare ValueError.
        with pytest.raises(ValueError):
            raise BucketFullError("full")
        assert issubclass(BucketFullError, CapacityError)

    def test_wire_code_is_capacity(self):
        assert error_code_for(BucketFullError("full")) is ErrorCode.CAPACITY

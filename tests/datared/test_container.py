"""Tests for compressed-chunk containers."""

import pytest

from repro.datared.container import (
    CONTAINER_SIZE,
    OFFSET_GRANULE,
    Container,
    ContainerStore,
)


class TestContainer:
    def test_append_and_read(self):
        container = Container(0, capacity=4096)
        placement = container.append(b"payload", stored_size=7)
        assert placement.offset == 0
        assert container.read(placement.offset) == b"payload"

    def test_offsets_advance_by_granules(self):
        container = Container(0, capacity=4096)
        first = container.append(b"a" * 100, 100)
        second = container.append(b"b" * 10, 10)
        assert first.offset == 0
        assert second.offset == (100 + OFFSET_GRANULE - 1) // OFFSET_GRANULE == 2

    def test_offsets_fit_two_byte_field(self):
        container = Container(0)  # 4 MB default
        assert container.capacity // OFFSET_GRANULE <= 0x10000

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            Container(0, capacity=100)  # not granule-aligned
        with pytest.raises(ValueError):
            Container(0, capacity=8 * 1024 * 1024)  # exceeds offset field

    def test_has_room(self):
        container = Container(0, capacity=128)
        assert container.has_room(128)
        container.append(b"x" * 64, 64)
        assert container.has_room(64)
        assert not container.has_room(65)

    def test_sealed_rejects_append(self):
        container = Container(0, capacity=4096)
        container.seal()
        with pytest.raises(ValueError):
            container.append(b"x", 1)

    def test_garbage_accounting(self):
        container = Container(0, capacity=4096)
        placement = container.append(b"x" * 100, 100)
        container.append(b"y" * 100, 100)
        assert container.garbage_fraction == 0.0
        container.mark_dead(placement.offset, placement.stored_size)
        assert container.garbage_fraction == pytest.approx(0.5)
        assert container.live_bytes == 100

    def test_double_free_rejected(self):
        container = Container(0, capacity=4096)
        placement = container.append(b"x" * 10, 10)
        container.mark_dead(placement.offset, 10)
        with pytest.raises(KeyError):
            container.mark_dead(placement.offset, 10)

    def test_fill_bytes_includes_padding(self):
        container = Container(0, capacity=4096)
        container.append(b"x", 1)  # 1 byte occupies a full granule
        assert container.fill_bytes == OFFSET_GRANULE

    def test_chunks_lists_live_only(self):
        container = Container(0, capacity=4096)
        keep = container.append(b"keep", 4)
        drop = container.append(b"drop", 4)
        container.mark_dead(drop.offset, 4)
        assert container.chunks() == [(keep.offset, b"keep")]


class TestContainerStore:
    def test_append_rolls_to_new_container_when_full(self):
        sealed = []
        store = ContainerStore(container_size=128, on_seal=sealed.append)
        first = store.append(b"a" * 100, 100)
        second = store.append(b"b" * 100, 100)
        assert first.container_id != second.container_id
        assert [c.container_id for c in sealed] == [first.container_id]

    def test_read_across_containers(self):
        store = ContainerStore(container_size=128)
        a = store.append(b"aaa", 3)
        b = store.append(b"b" * 100, 100)
        assert store.read(a.container_id, a.offset) == b"aaa"
        assert store.read(b.container_id, b.offset) == b"b" * 100

    def test_seal_open_flushes(self):
        sealed = []
        store = ContainerStore(on_seal=sealed.append)
        store.append(b"x", 1)
        container = store.seal_open()
        assert container is not None and container.sealed
        assert sealed == [container]
        assert store.seal_open() is None  # nothing open now

    def test_unknown_container_read_rejected(self):
        with pytest.raises(KeyError):
            ContainerStore().read(99, 0)

    def test_garbage_victims(self):
        store = ContainerStore(container_size=128)
        placement = store.append(b"x" * 100, 100)
        store.append(b"y" * 100, 100)  # seals first container
        store.mark_dead(placement.container_id, placement.offset, 100)
        victims = store.garbage_victims(threshold=0.5)
        assert [v.container_id for v in victims] == [placement.container_id]

    def test_drop_requires_empty(self):
        store = ContainerStore(container_size=128)
        placement = store.append(b"x" * 100, 100)
        store.append(b"y" * 100, 100)
        with pytest.raises(ValueError):
            store.drop(placement.container_id)
        store.mark_dead(placement.container_id, placement.offset, 100)
        store.drop(placement.container_id)
        with pytest.raises(KeyError):
            store.read(placement.container_id, placement.offset)

    def test_live_and_total_bytes(self):
        store = ContainerStore()
        placement = store.append(b"x" * 50, 50)
        store.append(b"y" * 30, 30)
        store.mark_dead(placement.container_id, placement.offset, 50)
        assert store.total_bytes == 80
        assert store.live_bytes == 30

    def test_default_threshold_is_4mb(self):
        assert ContainerStore().container_size == CONTAINER_SIZE == 4 * 1024 * 1024

"""Tests for the bucket-based Hash-PBN table."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.datared.hash_pbn import (
    BUCKET_CAPACITY,
    BUCKET_SIZE,
    ENTRY_SIZE,
    Bucket,
    HashPbnTable,
    InMemoryBucketStore,
    buckets_for_capacity,
    table_bytes_for_capacity,
)
from repro.datared.hashing import fingerprint


def digest_of(i: int) -> bytes:
    return fingerprint(str(i).encode())


class TestBucket:
    def test_capacity_is_107(self):
        # 4096-byte page, 3-byte header, 38-byte entries (§2.1.3).
        assert BUCKET_CAPACITY == (BUCKET_SIZE - 3) // ENTRY_SIZE == 107

    def test_insert_lookup_remove(self):
        bucket = Bucket()
        bucket.insert(digest_of(1), 11)
        assert bucket.lookup(digest_of(1)) == 11
        assert bucket.lookup(digest_of(2)) is None
        assert bucket.remove(digest_of(1))
        assert not bucket.remove(digest_of(1))

    def test_full_bucket_rejects_insert(self):
        bucket = Bucket()
        for i in range(BUCKET_CAPACITY):
            bucket.insert(digest_of(i), i)
        assert bucket.is_full
        with pytest.raises(ValueError):
            bucket.insert(digest_of(9999), 0)

    def test_serialization_roundtrip(self):
        bucket = Bucket(overflowed=True)
        for i in range(20):
            bucket.insert(digest_of(i), i * 3)
        page = bucket.to_bytes()
        assert len(page) == BUCKET_SIZE
        restored = Bucket.from_bytes(page)
        assert restored.overflowed
        assert restored.entries == bucket.entries

    def test_empty_roundtrip(self):
        restored = Bucket.from_bytes(Bucket().to_bytes())
        assert restored.entries == []
        assert not restored.overflowed

    def test_bad_page_size_rejected(self):
        with pytest.raises(ValueError):
            Bucket.from_bytes(b"\x00" * 100)

    def test_corrupt_count_rejected(self):
        page = bytearray(Bucket().to_bytes())
        page[0:2] = (60000).to_bytes(2, "big")
        with pytest.raises(ValueError):
            Bucket.from_bytes(bytes(page))

    @given(st.lists(st.integers(0, 10_000), unique=True, min_size=0, max_size=50))
    def test_roundtrip_arbitrary_entries(self, keys):
        bucket = Bucket()
        for key in keys:
            bucket.insert(digest_of(key), key)
        assert Bucket.from_bytes(bucket.to_bytes()).entries == bucket.entries


class TestInMemoryBucketStore:
    def test_unwritten_reads_empty(self):
        store = InMemoryBucketStore()
        assert Bucket.from_bytes(store.read_bucket(5)).entries == []

    def test_write_read(self):
        store = InMemoryBucketStore()
        bucket = Bucket()
        bucket.insert(digest_of(1), 1)
        store.write_bucket(3, bucket.to_bytes())
        assert Bucket.from_bytes(store.read_bucket(3)).entries == bucket.entries

    def test_io_counted(self):
        store = InMemoryBucketStore()
        store.read_bucket(0)
        store.write_bucket(0, Bucket().to_bytes())
        assert store.reads == 1
        assert store.writes == 1

    def test_page_size_enforced(self):
        with pytest.raises(ValueError):
            InMemoryBucketStore().write_bucket(0, b"tiny")


class TestHashPbnTable:
    def test_lookup_insert(self):
        table = HashPbnTable(64)
        assert table.lookup(digest_of(1)) is None
        table.insert(digest_of(1), 100)
        assert table.lookup(digest_of(1)) == 100
        assert len(table) == 1

    def test_remove(self):
        table = HashPbnTable(64)
        table.insert(digest_of(1), 100)
        assert table.remove(digest_of(1))
        assert table.lookup(digest_of(1)) is None
        assert not table.remove(digest_of(1))
        assert len(table) == 0

    def test_update_repoints(self):
        table = HashPbnTable(64)
        table.insert(digest_of(1), 100)
        assert table.update(digest_of(1), 200)
        assert table.lookup(digest_of(1)) == 200
        assert not table.update(digest_of(2), 1)

    def test_overflow_probing(self):
        # Overfilling one bucket forces probing; entries stay findable.
        table = HashPbnTable(3)
        keys = list(range(2 * BUCKET_CAPACITY))
        for key in keys:
            table.insert(digest_of(key), key)
        for key in keys:
            assert table.lookup(digest_of(key)) == key

    def test_remove_after_overflow_stays_correct(self):
        table = HashPbnTable(2)
        keys = list(range(2 * BUCKET_CAPACITY))
        for key in keys:
            table.insert(digest_of(key), key)
        for key in keys[::2]:
            assert table.remove(digest_of(key))
        for key in keys[1::2]:
            assert table.lookup(digest_of(key)) == key
        for key in keys[::2]:
            assert table.lookup(digest_of(key)) is None

    def test_full_table_raises(self):
        table = HashPbnTable(1)
        for i in range(BUCKET_CAPACITY):
            table.insert(digest_of(i), i)
        with pytest.raises(RuntimeError):
            table.insert(digest_of(99999), 0)

    def test_pbn_validation(self):
        table = HashPbnTable(4)
        with pytest.raises(ValueError):
            table.insert(digest_of(1), -1)
        with pytest.raises(ValueError):
            table.insert(b"short", 1)

    def test_load_factor(self):
        table = HashPbnTable(4)
        for i in range(10):
            table.insert(digest_of(i), i)
        assert table.load_factor == pytest.approx(10 / (4 * BUCKET_CAPACITY))

    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(
            st.tuples(st.sampled_from(["insert", "remove", "lookup"]),
                      st.integers(0, 40)),
            max_size=120,
        )
    )
    def test_matches_dict_model(self, operations):
        table = HashPbnTable(8)
        model = {}
        for op, key in operations:
            digest = digest_of(key)
            if op == "insert":
                if digest not in {digest_of(k) for k in model}:
                    if key not in model:
                        table.insert(digest, key)
                        model[key] = key
            elif op == "remove":
                assert table.remove(digest) == (key in model)
                model.pop(key, None)
            else:
                assert table.lookup(digest) == model.get(key)
        assert len(table) == len(model)


class TestSizing:
    def test_petabyte_table_size_matches_paper(self):
        # §2.1.3: ~9.5 TB of table for 1 PB of unique 4-KB chunks.
        size = table_bytes_for_capacity(10**15)
        assert 9.0e12 < size < 9.6e12

    def test_buckets_for_capacity_respects_load_factor(self):
        buckets = buckets_for_capacity(10**9, load_factor=0.5)
        chunks = 10**9 // 4096
        assert buckets * BUCKET_CAPACITY * 0.5 >= chunks

    def test_validation(self):
        with pytest.raises(ValueError):
            table_bytes_for_capacity(-1)
        with pytest.raises(ValueError):
            buckets_for_capacity(10**9, load_factor=0.0)

"""Tests for the end-to-end dedup engine (write/read/reclaim/GC)."""

import random

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.datared.compression import ModeledCompressor, ZlibCompressor
from repro.datared.dedup import DedupEngine


def fresh_engine(**kwargs) -> DedupEngine:
    kwargs.setdefault("num_buckets", 256)
    return DedupEngine(**kwargs)


CHUNK = 4096


class TestWritePath:
    def test_unique_then_duplicate(self, rng):
        engine = fresh_engine()
        data = rng.randbytes(CHUNK)
        first = engine.write(0, data)
        second = engine.write(1, data)
        assert first.chunks[0].duplicate is False
        assert second.chunks[0].duplicate is True
        assert second.chunks[0].pbn == first.chunks[0].pbn
        assert engine.stats.dedup_ratio == 0.5

    def test_multi_chunk_write(self, rng):
        engine = fresh_engine()
        payload = rng.randbytes(CHUNK) * 2  # two identical chunks
        report = engine.write(0, payload)
        assert report.unique_chunks == 1
        assert report.duplicate_chunks == 1
        assert report.logical_bytes == 2 * CHUNK

    def test_compression_reduces_stored(self, rng):
        engine = fresh_engine(compressor=ZlibCompressor())
        data = rng.randbytes(CHUNK // 2) + b"\x00" * (CHUNK // 2)
        report = engine.write(0, data)
        assert 0 < report.stored_bytes < CHUNK

    def test_duplicate_stores_nothing(self, rng):
        engine = fresh_engine()
        data = rng.randbytes(CHUNK)
        engine.write(0, data)
        report = engine.write(8, data)
        assert report.stored_bytes == 0

    def test_overwrite_releases_old_chunk(self, rng):
        engine = fresh_engine()
        engine.write(0, rng.randbytes(CHUNK))
        report = engine.write(0, rng.randbytes(CHUNK))
        assert report.reclaimed_chunks == 1
        assert engine.stats.reclaimed_stored_bytes > 0

    def test_overwrite_with_same_content_is_stable(self, rng):
        engine = fresh_engine()
        data = rng.randbytes(CHUNK)
        engine.write(0, data)
        report = engine.write(0, data)
        assert report.duplicate_chunks == 1
        assert report.reclaimed_chunks == 0
        assert engine.read(0, 1).data == data

    def test_shared_chunk_survives_one_release(self, rng):
        engine = fresh_engine()
        data = rng.randbytes(CHUNK)
        engine.write(0, data)
        engine.write(8, data)  # second reference
        engine.write(0, rng.randbytes(CHUNK))  # drop first reference
        assert engine.read(8, 1).data == data

    def test_last_release_retires_fingerprint(self, rng):
        engine = fresh_engine()
        data = rng.randbytes(CHUNK)
        engine.write(0, data)
        engine.write(0, rng.randbytes(CHUNK))
        # Content is gone: rewriting it is unique again.
        report = engine.write(16, data)
        assert report.unique_chunks == 1


class TestReadPath:
    def test_roundtrip(self, rng):
        engine = fresh_engine()
        data = rng.randbytes(2 * CHUNK)
        engine.write(0, data)
        assert engine.read(0, 2).data == data

    def test_holes_read_zero(self):
        engine = fresh_engine()
        report = engine.read(0, 2)
        assert report.data == b"\x00" * (2 * CHUNK)
        assert report.unmapped_chunks == 2

    def test_stored_bytes_read_accounted(self, rng):
        engine = fresh_engine(compressor=ModeledCompressor(0.5))
        engine.write(0, rng.randbytes(CHUNK))
        report = engine.read(0, 1)
        assert report.stored_bytes_read == CHUNK // 2

    def test_validation(self):
        engine = fresh_engine()
        with pytest.raises(ValueError):
            engine.read(0, 0)

    def test_read_after_many_overwrites(self, rng):
        engine = fresh_engine()
        latest = {}
        for _ in range(60):
            lba = rng.randrange(0, 8)
            data = rng.randbytes(CHUNK)
            engine.write(lba, data)
            latest[lba] = data
        for lba, data in latest.items():
            assert engine.read(lba, 1).data == data

    def test_stored_bytes_survive_source_buffer_mutation(self, rng):
        """The incompressible path stores a *view* of the caller's write
        buffer (DESIGN.md §5.4); the container's append must take its
        defensive copy before ``write`` returns, or a caller reusing its
        buffer would corrupt stored data."""
        engine = fresh_engine()
        source = bytearray(rng.randbytes(CHUNK))  # incompressible
        original = bytes(source)
        engine.write(0, source)
        source[:] = b"\xa5" * CHUNK  # caller reuses the buffer
        assert engine.read(0, 1).data == original

    def test_stored_views_survive_batched_write_buffer_reuse(self, rng):
        """Same guarantee for ``write_many``: every chunk is a zero-copy
        slice of one batch buffer, and none may alias it after return."""
        engine = fresh_engine()
        source = bytearray(
            rng.randbytes(CHUNK) + rng.randbytes(CHUNK // 2) + bytes(CHUNK // 2)
        )
        original = bytes(source)
        engine.write_many([(0, source)])
        source[:] = b"\x5a" * len(source)
        assert engine.read(0, 2).data == original


class TestStats:
    def test_reduction_factor(self, rng):
        engine = fresh_engine(compressor=ModeledCompressor(0.5))
        data = rng.randbytes(CHUNK)
        engine.write(0, data)
        engine.write(8, data)
        # 2 logical chunks, 0.5 stored -> 4x reduction.
        assert engine.stats.reduction_factor == pytest.approx(4.0)

    def test_compression_ratio_uses_cumulative_stored(self, rng):
        engine = fresh_engine(compressor=ModeledCompressor(0.5))
        engine.write(0, rng.randbytes(CHUNK))
        engine.write(0, rng.randbytes(CHUNK))  # overwrite (reclaims)
        assert engine.stats.compression_ratio == pytest.approx(0.5)
        assert engine.stats.live_stored_bytes == CHUNK // 2


class TestGarbageCollection:
    def test_collect_compacts_dead_containers(self, rng):
        from repro.datared.container import ContainerStore

        engine = DedupEngine(
            num_buckets=256,
            compressor=ModeledCompressor(1.0),
            containers=ContainerStore(container_size=16 * 1024),
        )
        # Fill a few containers, then overwrite most LBAs to create garbage.
        originals = {lba: rng.randbytes(CHUNK) for lba in range(0, 8 * 8, 8)}
        for lba, data in originals.items():
            engine.write(lba, data)
        engine.flush()
        survivors = {}
        for lba in list(originals)[:-2]:
            data = rng.randbytes(CHUNK)
            engine.write(lba, data)
            survivors[lba] = data
        for lba in list(originals)[-2:]:
            survivors[lba] = originals[lba]
        engine.flush()
        reclaimed = engine.collect_garbage(threshold=0.5)
        assert reclaimed > 0
        for lba, data in survivors.items():
            assert engine.read(lba, 1).data == data

    def test_collect_noop_when_clean(self, rng):
        engine = fresh_engine()
        engine.write(0, rng.randbytes(CHUNK))
        engine.flush()
        assert engine.collect_garbage() == 0


class TestGcIndexedPlacement:
    """Collection resolves placements through the PbnMap's incremental
    reverse index — never by rescanning the whole PBN population."""

    @staticmethod
    def engine_with_garbage(rng, *, cold_chunks=0):
        """An engine whose first post-cold container is 6/8 dead.

        16-KB containers and a 0.5 compressor hold exactly 8 chunks per
        container, so ``cold_chunks`` (a multiple of 8) seals whole
        containers of untouched live data before the garbage pattern.
        """
        from repro.datared.container import ContainerStore

        engine = DedupEngine(
            num_buckets=256,
            compressor=ModeledCompressor(0.5),
            containers=ContainerStore(container_size=16 * 1024),
        )
        for i in range(cold_chunks):
            engine.write(1000 + i * 8, rng.randbytes(CHUNK))
        victims = {lba: rng.randbytes(CHUNK) for lba in range(0, 8 * 8, 8)}
        for lba, data in victims.items():
            engine.write(lba, data)
        engine.flush()
        survivors = dict(list(victims.items())[-2:])
        for lba in list(victims)[:-2]:
            data = rng.randbytes(CHUNK)
            engine.write(lba, data)
            survivors[lba] = data
        engine.flush()
        return engine, survivors

    def test_collect_never_rescans_pbn_records(self, rng, monkeypatch):
        engine, survivors = self.engine_with_garbage(rng)

        def boom(*args, **kwargs):
            raise AssertionError("collect_garbage rescanned the PBN map")

        monkeypatch.setattr(engine.pbn_map, "records", boom)
        assert engine.collect_garbage(threshold=0.5) > 0
        for lba, data in survivors.items():
            assert engine.read(lba, 1).data == data

    def test_gc_work_independent_of_pbn_population(self, rng, monkeypatch):
        """Same garbage, 10x the live PBNs: identical index lookups."""
        lookups = {}
        for label, cold in (("small", 0), ("large", 80)):
            engine, survivors = self.engine_with_garbage(
                rng, cold_chunks=cold
            )
            calls = []
            original = engine.pbn_map.pbn_at
            monkeypatch.setattr(
                engine.pbn_map,
                "pbn_at",
                lambda c, o: calls.append((c, o)) or original(c, o),
            )
            assert engine.collect_garbage(threshold=0.5) > 0
            lookups[label] = len(calls)
            for lba, data in survivors.items():
                assert engine.read(lba, 1).data == data
        assert lookups["small"] == lookups["large"]
        # Exactly the victims' live chunks get looked up: the 2 never-
        # overwritten survivors in the 6/8-dead container.
        assert lookups["small"] == 2


class TestPropertyRoundtrip:
    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(st.lists(
        st.tuples(st.integers(0, 15), st.integers(0, 8)),
        min_size=1, max_size=60,
    ))
    def test_engine_matches_dict_model(self, writes):
        """Writes of content-id-derived chunks; reads must match a dict."""
        engine = fresh_engine(compressor=ModeledCompressor(0.5))
        model = {}
        base_rng = random.Random(42)
        pool = [base_rng.randbytes(CHUNK) for _ in range(9)]
        for lba, content_id in writes:
            data = pool[content_id]
            engine.write(lba, data)
            model[lba] = data
        for lba, data in model.items():
            assert engine.read(lba, 1).data == data
        # Dedup invariant: stored uniques never exceed distinct contents.
        assert engine.stats.unique_chunks <= len(pool) + len(model)

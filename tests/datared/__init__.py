"""Test package."""

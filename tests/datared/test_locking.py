"""Concurrent-caller regression tests for the engine lock.

The engine's entry points serialize on one reentrant
:class:`~repro.sync.DisciplinedLock`, so N threads hammering the same
engine must produce *exact* aggregate ledgers — the kind of numbers
that lost updates corrupt silently.  These tests assert the exact
totals; before the lock existed they failed flakily under load."""

from __future__ import annotations

import threading


from repro.analysis.invariants import check_engine
from repro.datared.chunking import BLOCK_SIZE
from repro.datared.dedup import DedupEngine
from repro.sync import DisciplinedLock

CHUNK = 4096
BLOCKS = CHUNK // BLOCK_SIZE
THREADS = 8
WRITES_PER_THREAD = 60


def test_engine_lock_is_a_disciplined_rlock():
    engine = DedupEngine(num_buckets=64)
    assert isinstance(engine.lock, DisciplinedLock)
    with engine.lock:  # reentrant: the engine's own entry points nest
        engine.write(0, bytes(CHUNK))


def test_concurrent_writers_keep_exact_ledgers():
    engine = DedupEngine(num_buckets=4096)
    barrier = threading.Barrier(THREADS)

    def writer(index: int) -> None:
        barrier.wait()
        base = index * WRITES_PER_THREAD * BLOCKS
        for step in range(WRITES_PER_THREAD):
            # Unique per-thread content: every write stores a new chunk.
            payload = index.to_bytes(2, "big") + step.to_bytes(2, "big")
            engine.write(base + step * BLOCKS, payload.ljust(CHUNK, b"\0"))

    threads = [
        threading.Thread(target=writer, args=(index,))
        for index in range(THREADS)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    total = THREADS * WRITES_PER_THREAD
    assert engine.stats.logical_bytes == total * CHUNK
    assert engine.stats.unique_chunks == total
    assert engine.stats.duplicate_chunks == 0
    assert len(engine.lba_map) == total
    assert check_engine(engine) == []


def test_concurrent_duplicate_writers_dedup_exactly():
    engine = DedupEngine(num_buckets=1024)
    barrier = threading.Barrier(THREADS)
    shared = bytes(range(256)) * (CHUNK // 256)  # same content everywhere

    def writer(index: int) -> None:
        barrier.wait()
        base = index * WRITES_PER_THREAD * BLOCKS
        for step in range(WRITES_PER_THREAD):
            engine.write(base + step * BLOCKS, shared)

    threads = [
        threading.Thread(target=writer, args=(index,))
        for index in range(THREADS)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    total = THREADS * WRITES_PER_THREAD
    # Exactly one stored copy; every other write was a dedup hit.
    assert engine.stats.unique_chunks == 1
    assert engine.stats.duplicate_chunks == total - 1
    assert check_engine(engine) == []


def test_concurrent_read_write_flush_mix_stays_consistent():
    engine = DedupEngine(num_buckets=1024)
    barrier = threading.Barrier(4)
    errors = []

    def churn(index: int) -> None:
        try:
            barrier.wait()
            base = index * 64 * BLOCKS
            payload = bytes([index]) * CHUNK
            for step in range(40):
                engine.write(base + (step % 8) * BLOCKS, payload)
                assert engine.read(base + (step % 8) * BLOCKS).data == payload
                if step % 10 == 9:
                    engine.flush()
                    engine.collect_garbage(0.3)
        except Exception as error:
            errors.append(repr(error))

    threads = [threading.Thread(target=churn, args=(i,)) for i in range(4)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert errors == []
    assert check_engine(engine) == []

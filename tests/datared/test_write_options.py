"""The typed write-call surface: WriteOptions replaces the kwarg
sprawl (the PR-5 deprecated ``digests=`` keyword is now gone), and
EngineStats/stats_snapshot give a lock-consistent typed view of the
ledgers plus the registry publication."""

from __future__ import annotations

import pytest

from repro.datared.compression import ModeledCompressor
from repro.datared.dedup import DedupEngine, EngineStats, WriteOptions
from repro.datared.hashing import fingerprint
from repro.obs.metrics import MetricsRegistry

CHUNK = 4096


def make_engine(**kwargs) -> DedupEngine:
    kwargs.setdefault("num_buckets", 1 << 10)
    kwargs.setdefault("compressor", ModeledCompressor(0.5))
    return DedupEngine(**kwargs)


def requests_for(count: int):
    requests = []
    step = 0
    for index in range(count):
        requests.append((step, bytes([index % 5]) * CHUNK))
        step += CHUNK // 512
    return requests


class TestWriteOptions:
    def test_digests_path_matches_engine_hashing(self):
        plain = make_engine()
        offloaded = make_engine()
        requests = requests_for(12)
        digests = [fingerprint(payload) for _, payload in requests]

        plain_reports = plain.write_many(requests)
        offload_reports = offloaded.write_many(
            requests, WriteOptions(digests=digests)
        )
        assert offload_reports == plain_reports
        assert offloaded.stats_snapshot() == plain.stats_snapshot()
        for lba, payload in requests:
            assert offloaded.read(lba, 1).data == payload

    def test_single_write_accepts_digest_options(self):
        engine = make_engine()
        payload = b"z" * CHUNK
        report = engine.write(0, payload, WriteOptions(digests=[fingerprint(payload)]))
        assert report.logical_bytes == CHUNK
        assert engine.read(0, 1).data == payload

    def test_flush_option_seals_the_open_container(self):
        engine = make_engine()
        engine.write(0, b"q" * CHUNK)
        assert engine.containers.sealed_count == 0
        engine.write(8, b"r" * CHUNK, WriteOptions(flush=True))
        assert engine.containers.sealed_count == 1

    def test_digests_keyword_shim_is_gone(self):
        # The PR-5 deprecated ``digests=`` alias was removed; the typed
        # WriteOptions object is the only way to pass precomputed
        # digests now, and the old spelling fails loudly.
        engine = make_engine()
        requests = requests_for(3)
        digests = [fingerprint(payload) for _, payload in requests]
        with pytest.raises(TypeError, match="digests"):
            engine.write_many(requests, digests=digests)

    def test_options_are_immutable(self):
        options = WriteOptions(flush=True)
        with pytest.raises(AttributeError):
            options.flush = False


class TestEngineStats:
    def test_snapshot_mirrors_the_ledgers(self):
        engine = make_engine()
        engine.write_many(requests_for(10), WriteOptions(flush=True))
        snap = engine.stats_snapshot()
        assert isinstance(snap, EngineStats)
        assert snap.logical_bytes == engine.stats.logical_bytes
        assert snap.unique_chunks == engine.stats.unique_chunks
        assert snap.duplicate_chunks == engine.stats.duplicate_chunks
        assert snap.containers_sealed == engine.containers.sealed_count
        assert snap.live_stored_bytes == (
            snap.stored_bytes - snap.reclaimed_stored_bytes
        )
        assert snap.dedup_ratio == engine.stats.dedup_ratio
        assert snap.compression_ratio == engine.stats.compression_ratio

    def test_snapshot_is_a_value_not_a_view(self):
        engine = make_engine()
        engine.write(0, b"v" * CHUNK)
        before = engine.stats_snapshot()
        engine.write(8, b"w" * CHUNK)
        assert engine.stats_snapshot().logical_bytes == 2 * CHUNK
        assert before.logical_bytes == CHUNK

    def test_engine_publishes_gauges_into_injected_registry(self):
        registry = MetricsRegistry()
        engine = make_engine(registry=registry)
        engine.write_many(requests_for(8), WriteOptions(flush=True))
        gauges = registry.snapshot()["gauges"]
        assert gauges["engine.logical_bytes"] == 8 * CHUNK
        assert gauges["engine.unique_chunks"] == 5
        assert gauges["engine.duplicate_chunks"] == 3
        assert gauges["engine.containers_sealed"] == 1
        assert 0.0 <= gauges["engine.dedup_ratio"] <= 1.0
        # The published factor is always finite (the collector clamps
        # the stored-nothing corner so the snapshot stays strict-JSON);
        # keep the engine referenced so its weak collector stays alive.
        import math
        fresh_registry = MetricsRegistry()
        fresh_engine = make_engine(registry=fresh_registry)
        fresh = fresh_registry.snapshot()["gauges"]
        assert math.isfinite(fresh["engine.reduction_factor"])
        del fresh_engine

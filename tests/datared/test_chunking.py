"""Tests for fixed chunking and the large-chunking RMW pipeline."""

import pytest
from hypothesis import given, strategies as st

from repro.datared.chunking import (
    BLOCK_SIZE,
    FixedChunker,
    LargeChunkAssembler,
    RmwStats,
)


class TestFixedChunker:
    def test_default_is_4k(self):
        assert FixedChunker().chunk_size == BLOCK_SIZE

    def test_invalid_sizes_rejected(self):
        for bad in (0, -4096, 1000, BLOCK_SIZE + 1):
            with pytest.raises(ValueError):
                FixedChunker(bad)

    def test_single_chunk(self):
        chunks = FixedChunker().split(10, b"x" * BLOCK_SIZE)
        assert len(chunks) == 1
        assert chunks[0].lba == 10
        assert chunks[0].data == b"x" * BLOCK_SIZE

    def test_multi_chunk_lbas_advance_by_blocks(self):
        chunker = FixedChunker(8192)  # 2 blocks per chunk
        chunks = chunker.split(0, b"a" * 8192 + b"b" * 8192)
        assert [chunk.lba for chunk in chunks] == [0, 2]

    def test_short_tail_zero_padded(self):
        chunks = FixedChunker().split(0, b"abc")
        assert len(chunks) == 1
        assert len(chunks[0].data) == BLOCK_SIZE
        assert chunks[0].data.startswith(b"abc")
        assert chunks[0].data[3:] == b"\x00" * (BLOCK_SIZE - 3)

    def test_empty_payload(self):
        assert FixedChunker().split(0, b"") == []

    def test_unaligned_lba_rejected(self):
        chunker = FixedChunker(8192)
        with pytest.raises(ValueError):
            chunker.split(1, b"x" * 8192)

    def test_negative_lba_rejected(self):
        with pytest.raises(ValueError):
            FixedChunker().split(-1, b"x")

    def test_chunk_lba_alignment(self):
        chunker = FixedChunker(32768)  # 8 blocks
        assert chunker.chunk_lba(0) == 0
        assert chunker.chunk_lba(7) == 0
        assert chunker.chunk_lba(8) == 8
        assert chunker.chunk_lba(13) == 8

    @given(
        st.integers(min_value=0, max_value=100),
        st.binary(min_size=1, max_size=5 * BLOCK_SIZE),
    )
    def test_split_reassembles_to_padded_payload(self, lba_chunks, payload):
        chunker = FixedChunker()
        chunks = chunker.split(lba_chunks, payload)
        joined = b"".join(chunk.data for chunk in chunks)
        assert joined.startswith(payload)
        assert len(joined) % BLOCK_SIZE == 0
        assert set(joined[len(payload):]) <= {0}

    @given(st.binary(min_size=1, max_size=4 * BLOCK_SIZE))
    def test_chunk_lbas_are_consecutive(self, payload):
        chunks = FixedChunker().split(0, payload)
        assert [chunk.lba for chunk in chunks] == list(range(len(chunks)))


class TestRmwStats:
    def test_total_and_amplification(self):
        baseline = RmwStats(client_blocks=10, chunk_writes=10)
        heavy = RmwStats(client_blocks=10, fill_reads=30, chunk_writes=40)
        assert heavy.total_io_blocks == 70
        assert heavy.amplification(baseline) == 7.0

    def test_zero_baseline_rejected(self):
        with pytest.raises(ValueError):
            RmwStats().amplification(RmwStats())


class TestLargeChunkAssembler:
    def test_4k_chunking_has_no_fill_reads(self):
        assembler = LargeChunkAssembler(chunk_size=BLOCK_SIZE)
        assembler.run_trace([(i, i) for i in range(100)])
        assert assembler.stats.fill_reads == 0
        assert assembler.stats.chunk_writes == 100

    def test_scattered_writes_need_fills(self):
        # 8-block chunks, one write per extent: 7 fills each.
        assembler = LargeChunkAssembler(chunk_size=8 * BLOCK_SIZE)
        assembler.run_trace([(i * 8, i) for i in range(10)])
        assert assembler.stats.fill_reads == 70
        assert assembler.stats.chunk_writes == 80

    def test_dense_run_avoids_fills(self):
        assembler = LargeChunkAssembler(chunk_size=8 * BLOCK_SIZE)
        assembler.run_trace([(i, i) for i in range(8)])
        assert assembler.stats.fill_reads == 0

    def test_dedup_detects_identical_extents(self):
        assembler = LargeChunkAssembler(chunk_size=2 * BLOCK_SIZE, buffer_blocks=4)
        # Two extents with identical content signatures.
        assembler.run_trace([(0, 7), (1, 8), (2, 7), (3, 8)])
        assert assembler.stats.dedup_hits == 1
        assert assembler.dedup_ratio == 0.5

    def test_dedup_degrades_when_one_block_differs(self):
        assembler = LargeChunkAssembler(chunk_size=2 * BLOCK_SIZE, buffer_blocks=4)
        assembler.run_trace([(0, 7), (1, 8), (2, 7), (3, 9)])
        assert assembler.stats.dedup_hits == 0

    def test_fill_reads_use_stored_content(self):
        assembler = LargeChunkAssembler(chunk_size=2 * BLOCK_SIZE, buffer_blocks=2)
        # Write the full extent, flush, then rewrite one block with the
        # same content: the assembled signature should match (dedup hit).
        assembler.run_trace([(0, 5), (1, 6)])
        assembler.write_block(0, 5)
        assembler.flush()
        assert assembler.stats.dedup_hits == 1
        assert assembler.stats.fill_reads == 1

    def test_buffer_flush_threshold(self):
        assembler = LargeChunkAssembler(chunk_size=BLOCK_SIZE, buffer_blocks=4)
        for i in range(3):
            assembler.write_block(i, i)
        assert assembler.stats.chunk_writes == 0  # still buffered
        assembler.write_block(3, 3)
        assert assembler.stats.chunk_writes == 4  # flushed at capacity

    def test_client_blocks_counted(self):
        assembler = LargeChunkAssembler()
        assembler.run_trace([(0, 1), (1, 2)])
        assert assembler.stats.client_blocks == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            LargeChunkAssembler(chunk_size=1000)
        with pytest.raises(ValueError):
            LargeChunkAssembler(buffer_blocks=0)
        with pytest.raises(ValueError):
            LargeChunkAssembler().write_block(-1, 0)

    def test_amplification_grows_with_chunk_size_on_random_writes(self):
        import random

        rng = random.Random(7)
        trace = [(rng.randrange(4096), rng.randrange(50)) for _ in range(2000)]
        totals = {}
        for chunk_size in (BLOCK_SIZE, 8 * BLOCK_SIZE, 32 * BLOCK_SIZE):
            assembler = LargeChunkAssembler(chunk_size=chunk_size, buffer_blocks=256)
            assembler.run_trace(trace)
            totals[chunk_size] = assembler.stats.total_io_blocks
        assert totals[BLOCK_SIZE] < totals[8 * BLOCK_SIZE] < totals[32 * BLOCK_SIZE]

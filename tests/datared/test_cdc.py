"""Tests for content-defined chunking and the CDC store."""


import pytest
from hypothesis import given, settings, strategies as st

from repro.datared.cdc import CdcDedupStore, GearChunker
from repro.datared.compression import ModeledCompressor


class TestGearChunker:
    def test_empty(self):
        assert GearChunker().split(b"") == []

    def test_reassembles(self, rng):
        data = rng.randbytes(50_000)
        chunks = GearChunker().split(data)
        assert b"".join(chunks) == data

    def test_size_bounds(self, rng):
        chunker = GearChunker(min_size=512, avg_size=2048, max_size=8192)
        chunks = chunker.split(rng.randbytes(100_000))
        # All but the final chunk respect the minimum; all respect max.
        assert all(len(chunk) >= 512 for chunk in chunks[:-1])
        assert all(len(chunk) <= 8192 for chunk in chunks)

    def test_mean_size_near_target(self, rng):
        chunker = GearChunker(min_size=1024, avg_size=4096, max_size=16384)
        chunks = chunker.split(rng.randbytes(400_000))
        mean = sum(len(chunk) for chunk in chunks) / len(chunks)
        # Geometric past the minimum: mean ≈ min + avg, loosely.
        assert 2500 < mean < 9000

    def test_deterministic(self, rng):
        data = rng.randbytes(20_000)
        assert GearChunker().split(data) == GearChunker().split(data)

    def test_boundaries_survive_prefix_insertion(self, rng):
        """The CDC property: a shifted stream re-synchronizes."""
        chunker = GearChunker()
        data = rng.randbytes(100_000)
        original = {bytes(chunk) for chunk in chunker.split(data)}
        shifted = {bytes(chunk) for chunk in chunker.split(b"PREFIX" + data)}
        shared = original & shifted
        assert len(shared) >= 0.7 * len(original)

    def test_fixed_chunking_would_not_survive_shift(self, rng):
        data = rng.randbytes(100_000)
        fixed = {data[i : i + 4096] for i in range(0, len(data), 4096)}
        shifted_data = b"P" + data
        shifted = {
            shifted_data[i : i + 4096]
            for i in range(0, len(shifted_data), 4096)
        }
        assert len(fixed & shifted) == 0

    def test_bytes_scanned_counts_input(self, rng):
        chunker = GearChunker()
        chunker.split(rng.randbytes(12_345))
        assert chunker.bytes_scanned == 12_345

    def test_validation(self):
        with pytest.raises(ValueError):
            GearChunker(min_size=0)
        with pytest.raises(ValueError):
            GearChunker(min_size=100, avg_size=50)
        with pytest.raises(ValueError):
            GearChunker(avg_size=3000)  # not a power of two

    @settings(max_examples=20, deadline=None)
    @given(st.binary(min_size=0, max_size=60_000))
    def test_split_partitions_arbitrary_input(self, data):
        chunks = GearChunker(min_size=64, avg_size=1024, max_size=4096).split(data)
        assert b"".join(chunks) == data
        assert all(chunks)  # no empty chunks


class TestCdcDedupStore:
    def test_roundtrip(self, rng):
        store = CdcDedupStore(compressor=ModeledCompressor(0.5))
        data = rng.randbytes(30_000)
        store.write_stream("s", data)
        assert store.read_stream("s") == data

    def test_identical_streams_fully_dedupe(self, rng):
        store = CdcDedupStore(compressor=ModeledCompressor(0.5))
        data = rng.randbytes(30_000)
        store.write_stream("a", data)
        before = store.stats.unique_chunks
        store.write_stream("b", data)
        assert store.stats.unique_chunks == before
        assert store.read_stream("b") == data

    def test_shifted_stream_mostly_dedupes(self, rng):
        store = CdcDedupStore(compressor=ModeledCompressor(0.5))
        data = rng.randbytes(80_000)
        store.write_stream("orig", data)
        uniques_before = store.stats.unique_chunks
        store.write_stream("shifted", b"HEADER" + data)
        new_uniques = store.stats.unique_chunks - uniques_before
        assert new_uniques <= 4  # only the chunks around the edit
        assert store.read_stream("shifted") == b"HEADER" + data

    def test_unknown_stream(self):
        with pytest.raises(KeyError):
            CdcDedupStore().read_stream("ghost")

    def test_stream_listing_and_replace(self, rng):
        store = CdcDedupStore(compressor=ModeledCompressor(0.5))
        store.write_stream("x", rng.randbytes(5000))
        replacement = rng.randbytes(5000)
        store.write_stream("x", replacement)
        assert store.streams() == ["x"]
        assert store.read_stream("x") == replacement

    def test_reduction_factor(self, rng):
        store = CdcDedupStore(compressor=ModeledCompressor(0.5))
        data = rng.randbytes(20_000)
        store.write_stream("a", data)
        store.write_stream("b", data)
        # 2x from dedup, 2x from compression.
        assert store.stats.reduction_factor == pytest.approx(4.0, rel=0.1)

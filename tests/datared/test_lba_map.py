"""Tests for the two-level LBA-PBA mapping and reference counting."""

import pytest

from repro.datared.lba_map import (
    LBA_PBN_ENTRY_SIZE,
    PBN_PBA_ENTRY_SIZE,
    LbaMap,
    PbnAllocator,
    PbnMap,
    PbnRecord,
    mapping_bytes_for_capacity,
)


def record(container=0, offset=0, size=100, refcount=1) -> PbnRecord:
    return PbnRecord(
        container_id=container,
        offset=offset,
        stored_size=size,
        fingerprint=b"\x01" * 32,
        refcount=refcount,
    )


class TestLbaMap:
    def test_set_get(self):
        lba_map = LbaMap()
        assert lba_map.set(10, 5) is None
        assert lba_map.get(10) == 5
        assert 10 in lba_map

    def test_remap_returns_previous(self):
        lba_map = LbaMap()
        lba_map.set(10, 5)
        assert lba_map.set(10, 7) == 5
        assert lba_map.get(10) == 7

    def test_unmap(self):
        lba_map = LbaMap()
        lba_map.set(1, 2)
        assert lba_map.unmap(1) == 2
        assert lba_map.get(1) is None
        assert lba_map.unmap(1) is None

    def test_metadata_bytes(self):
        lba_map = LbaMap()
        for i in range(10):
            lba_map.set(i, i)
        assert lba_map.metadata_bytes == 10 * LBA_PBN_ENTRY_SIZE

    def test_items_iterates_all(self):
        lba_map = LbaMap()
        lba_map.set(1, 10)
        lba_map.set(2, 20)
        assert dict(lba_map.items()) == {1: 10, 2: 20}


class TestPbnAllocator:
    def test_sequential(self):
        allocator = PbnAllocator()
        assert [allocator.allocate() for _ in range(3)] == [0, 1, 2]

    def test_free_reuse(self):
        allocator = PbnAllocator()
        first = allocator.allocate()
        allocator.allocate()
        allocator.free(first)
        assert allocator.allocate() == first

    def test_free_unallocated_rejected(self):
        allocator = PbnAllocator()
        with pytest.raises(ValueError):
            allocator.free(0)

    def test_allocated_count(self):
        allocator = PbnAllocator()
        a = allocator.allocate()
        allocator.allocate()
        allocator.free(a)
        assert allocator.allocated == 1


class TestPbnMap:
    def test_add_get(self):
        pbn_map = PbnMap()
        pbn_map.add(1, record())
        assert pbn_map.get(1).stored_size == 100

    def test_duplicate_add_rejected(self):
        pbn_map = PbnMap()
        pbn_map.add(1, record())
        with pytest.raises(ValueError):
            pbn_map.add(1, record())

    def test_missing_get_raises(self):
        with pytest.raises(KeyError):
            PbnMap().get(9)

    def test_ref_unref_lifecycle(self):
        pbn_map = PbnMap()
        pbn_map.add(1, record())
        assert pbn_map.ref(1) == 2
        assert pbn_map.unref(1) is None  # still one reference
        dead = pbn_map.unref(1)
        assert dead is not None and dead.stored_size == 100
        assert 1 not in pbn_map

    def test_unref_dead_rejected(self):
        pbn_map = PbnMap()
        pbn_map.add(1, record())
        pbn_map.unref(1)
        with pytest.raises(KeyError):
            pbn_map.unref(1)

    def test_live_stored_bytes(self):
        pbn_map = PbnMap()
        pbn_map.add(1, record(size=100))
        pbn_map.add(2, record(size=250))
        assert pbn_map.live_stored_bytes == 350

    def test_metadata_bytes(self):
        pbn_map = PbnMap()
        pbn_map.add(1, record())
        assert pbn_map.metadata_bytes == PBN_PBA_ENTRY_SIZE

    def test_records_iteration(self):
        pbn_map = PbnMap()
        pbn_map.add(3, record())
        assert [pbn for pbn, _ in pbn_map.records()] == [3]


class TestPbnRecord:
    def test_validation(self):
        with pytest.raises(ValueError):
            record(refcount=-1)
        with pytest.raises(ValueError):
            record(size=0)


class TestSizing:
    def test_mapping_is_multi_tb_at_pb_scale(self):
        # §2.1.4: the LBA-PBA table is multi-TB for PB-scale storage.
        size = mapping_bytes_for_capacity(10**15)
        assert size > 2e12

    def test_validation(self):
        with pytest.raises(ValueError):
            mapping_bytes_for_capacity(-1)

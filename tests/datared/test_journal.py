"""Tests for group-commit journaling, checkpoints, and crash recovery."""

import copy

import pytest
from hypothesis import given, settings, strategies as st

from repro.datared.compression import ModeledCompressor
from repro.datared.dedup import DedupEngine
from repro.datared.hash_pbn import HashPbnTable
from repro.datared.journal import (
    CheckpointState,
    MetadataJournal,
    RecordKind,
    RecoveryImage,
    recover_engine,
    recover_into,
    replay_journal,
)
from repro.errors import JournalCorruptError

CHUNK = 4096


def journaled_engine(checkpoint_every=None):
    journal = MetadataJournal(checkpoint_every_commits=checkpoint_every)
    engine = DedupEngine(
        table=HashPbnTable(1024),
        compressor=ModeledCompressor(0.5),
        journal=journal,
    )
    return engine, journal


def fresh_engine(containers):
    return DedupEngine(
        table=HashPbnTable(1024),
        compressor=ModeledCompressor(0.5),
        containers=copy.deepcopy(containers),
    )


def recover(journal, engine, image=None):
    recovered = fresh_engine(engine.containers)
    report = recover_into(
        recovered, journal.to_bytes() if image is None else image
    )
    return recovered, report


class TestGroupCommit:
    def test_staged_records_are_not_durable(self):
        journal = MetadataJournal()
        journal.on_map(1, 1)
        assert journal.to_bytes() == b""
        assert journal.staged_bytes > 0

    def test_commit_fences_the_batch(self):
        journal = MetadataJournal()
        journal.on_map(1, 1)
        journal.on_map(2, 2)
        appended = journal.commit()
        assert appended == journal.size_bytes
        assert journal.staged_bytes == 0
        records, clean = MetadataJournal.decode(journal.to_bytes())
        assert clean
        assert [r.kind for r in records] == [
            RecordKind.MAP, RecordKind.MAP, RecordKind.COMMIT,
        ]

    def test_empty_commit_is_free(self):
        journal = MetadataJournal()
        assert journal.commit() == 0
        assert journal.to_bytes() == b""
        assert journal.commits == 0

    def test_engine_commits_once_per_call(self, rng):
        engine, journal = journaled_engine()
        engine.write_many(
            [(i * 8, rng.randbytes(CHUNK)) for i in range(4)]
        )
        assert journal.commits == 1
        assert journal.staged_bytes == 0
        records, clean = MetadataJournal.decode(journal.to_bytes())
        assert clean and records[-1].kind == RecordKind.COMMIT

    def test_on_durable_reports_stable_prefix(self, rng):
        journal = MetadataJournal()
        seen = []
        journal.on_durable = lambda image, stable: seen.append(
            (len(image), stable)
        )
        journal.on_map(1, 1)
        journal.commit()
        journal.on_map(2, 2)
        journal.commit()
        assert len(seen) == 2
        assert seen[0][1] == 0
        assert seen[1][1] == seen[0][0]  # old durable length


class TestJournalFraming:
    def test_empty_decodes_clean(self):
        records, clean = MetadataJournal.decode(b"")
        assert records == [] and clean

    def test_records_roundtrip(self):
        journal = MetadataJournal()
        digest = b"\xab" * 32
        journal.on_new_chunk(7, digest, 2, 64, 2048, 4096)
        journal.on_map(100, 7)
        journal.on_free(3)
        journal.commit()
        records, clean = MetadataJournal.decode(journal.to_bytes())
        assert clean
        assert [r.kind for r in records] == [
            RecordKind.NEW_CHUNK, RecordKind.MAP, RecordKind.FREE,
            RecordKind.COMMIT,
        ]
        new_chunk = records[0]
        assert (new_chunk.pbn, new_chunk.digest, new_chunk.container_id,
                new_chunk.offset, new_chunk.stored_size,
                new_chunk.logical_size) == (7, digest, 2, 64, 2048, 4096)
        assert (records[1].lba, records[1].pbn) == (100, 7)

    def test_torn_tail_returns_prefix(self):
        journal = MetadataJournal()
        journal.on_map(1, 1)
        journal.commit()
        journal.on_map(2, 2)
        journal.commit()
        image = journal.to_bytes()
        records, clean = MetadataJournal.decode(image[:-3])
        assert not clean
        assert len(records) == 3  # MAP, COMMIT, MAP survive framing

    def test_bitflip_detected(self):
        journal = MetadataJournal()
        journal.on_map(1, 1)
        journal.commit()
        image = bytearray(journal.to_bytes())
        image[7] ^= 0x01  # corrupt the payload
        records, clean = MetadataJournal.decode(bytes(image))
        assert not clean
        assert records == []

    def test_header_bitflip_detected(self):
        journal = MetadataJournal()
        journal.on_map(1, 1)
        journal.commit()
        image = bytearray(journal.to_bytes())
        image[0] ^= 0x04  # flip the record *kind* — CRC must catch it
        records, clean = MetadataJournal.decode(bytes(image))
        assert not clean
        assert records == []

    def test_frame_spans_walk(self):
        journal = MetadataJournal()
        journal.on_map(1, 1)
        journal.on_unmap(2)
        journal.commit()
        spans = MetadataJournal.frame_spans(journal.to_bytes())
        assert [kind for kind, _s, _e in spans] == [
            RecordKind.MAP, RecordKind.UNMAP, RecordKind.COMMIT,
        ]
        assert spans[0][1] == 0
        assert all(a[2] == b[1] for a, b in zip(spans, spans[1:]))
        assert spans[-1][2] == journal.size_bytes

    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 400))
    def test_any_truncation_yields_valid_prefix(self, cut):
        journal = MetadataJournal()
        for i in range(10):
            journal.on_new_chunk(i, bytes([i]) * 32, 0, i, 100, CHUNK)
            journal.on_map(i, i)
            journal.commit()
        image = journal.to_bytes()
        records, _ = MetadataJournal.decode(image[: min(cut, len(image))])
        # Prefix property: records decode in exactly the written order.
        cycle = [RecordKind.NEW_CHUNK, RecordKind.MAP, RecordKind.COMMIT]
        for position, record in enumerate(records):
            assert record.kind == cycle[position % 3]


class TestCheckpoint:
    def test_state_roundtrip(self):
        state = CheckpointState(
            next_pbn=17,
            pbn_records=[(3, b"\x11" * 32, 0, 2, 900, 2)],
            lba_entries=[(8, 3), (16, 3)],
            snapshots=[("snap-a", [(8, 3)])],
            stats=(8192, 4096, 900, 0, 1, 1),
        )
        assert CheckpointState.decode(state.encode()) == state

    def test_decode_rejects_trailing_bytes(self):
        state = CheckpointState(
            next_pbn=1, pbn_records=[], lba_entries=[], snapshots=[],
            stats=(0, 0, 0, 0, 0, 0),
        )
        with pytest.raises(JournalCorruptError):
            CheckpointState.decode(state.encode() + b"\x00")

    def test_decode_rejects_truncation(self):
        state = CheckpointState(
            next_pbn=1,
            pbn_records=[(1, b"\x22" * 32, 0, 0, 10, 1)],
            lba_entries=[], snapshots=[], stats=(0, 0, 0, 0, 0, 0),
        )
        with pytest.raises(JournalCorruptError):
            CheckpointState.decode(state.encode()[:-4])

    def test_checkpoint_requires_empty_stage(self):
        journal = MetadataJournal()
        journal.on_map(1, 1)
        with pytest.raises(ValueError, match="commit first"):
            journal.write_checkpoint(
                CheckpointState(
                    next_pbn=0, pbn_records=[], lba_entries=[],
                    snapshots=[], stats=(0, 0, 0, 0, 0, 0),
                )
            )

    def test_truncation_is_lazy(self, rng):
        engine, journal = journaled_engine()
        engine.write(0, rng.randbytes(CHUNK))
        before = journal.size_bytes
        engine.checkpoint()
        # The superseded prefix is still there: a crash tearing the
        # checkpoint record must find the old log intact ahead of it.
        assert journal.size_bytes > before
        engine.write(8, rng.randbytes(CHUNK))
        # ... and the next commit cut it.
        records, clean = MetadataJournal.decode(journal.to_bytes())
        assert clean
        assert records[0].kind == RecordKind.CHECKPOINT

    def test_cadence_checkpoints_automatically(self, rng):
        engine, journal = journaled_engine(checkpoint_every=2)
        for i in range(5):
            engine.write(i * 8, rng.randbytes(CHUNK))
        assert journal.checkpoints >= 2

    def test_recovery_from_checkpoint_plus_tail(self, rng):
        engine, journal = journaled_engine()
        state = {}
        for i in range(6):
            data = rng.randbytes(CHUNK)
            engine.write(i * 8, data)
            state[i * 8] = data
        engine.checkpoint()
        tail = rng.randbytes(CHUNK)
        engine.write(0, tail)
        state[0] = tail
        recovered, report = recover(journal, engine)
        assert report.clean and report.from_checkpoint
        for lba, data in state.items():
            assert recovered.read(lba, 1).data == data


class TestRecovery:
    def test_full_recovery_preserves_reads(self, rng):
        engine, journal = journaled_engine()
        state = {}
        pool = [rng.randbytes(CHUNK) for _ in range(20)]
        for _ in range(200):
            lba = rng.randrange(60) * 8
            data = (
                pool[rng.randrange(20)]
                if rng.random() < 0.5
                else rng.randbytes(CHUNK)
            )
            engine.write(lba, data)
            state[lba] = data
        recovered, report = recover(journal, engine)
        assert report.clean
        for lba, data in state.items():
            assert recovered.read(lba, 1).data == data

    def test_recovered_metadata_matches(self, rng):
        engine, journal = journaled_engine()
        data = rng.randbytes(CHUNK)
        engine.write(0, data)
        engine.write(8, data)  # duplicate
        engine.write(0, rng.randbytes(CHUNK))  # overwrite (chunk shared)
        recovered, _report = recover(journal, engine)
        assert len(recovered.lba_map) == len(engine.lba_map)
        assert len(recovered.pbn_map) == len(engine.pbn_map)
        for lba, pbn in engine.lba_map.items():
            assert recovered.lba_map.get(lba) == pbn
        for pbn, record in engine.pbn_map.records():
            assert recovered.pbn_map.get(pbn).refcount == record.refcount

    def test_recovery_restores_dedup_identity(self, rng):
        """New writes of previously stored content still deduplicate."""
        engine, journal = journaled_engine()
        data = rng.randbytes(CHUNK)
        engine.write(0, data)
        recovered, _report = recover(journal, engine)
        report = recovered.write(8, data)
        assert report.duplicate_chunks == 1

    def test_recovery_restores_allocator(self, rng):
        """PBNs freed before the crash are reusable after recovery."""
        engine, journal = journaled_engine()
        engine.write(0, rng.randbytes(CHUNK))
        engine.write(0, rng.randbytes(CHUNK))  # frees the first PBN
        recovered, _report = recover(journal, engine)
        report = recovered.write(8, rng.randbytes(CHUNK))
        assert report.chunks[0].pbn not in (
            pbn for lba, pbn in recovered.lba_map.items() if lba != 8
        )
        assert recovered.read(0, 1).data is not None

    def test_torn_batch_rolls_back_whole(self, rng):
        engine, journal = journaled_engine()
        first = rng.randbytes(CHUNK)
        engine.write(0, first)
        cut = journal.size_bytes  # crash point: after the first fence
        engine.write(8, rng.randbytes(CHUNK))
        image = journal.to_bytes()[: cut + 5]  # tear mid-record
        recovered, report = recover(journal, engine, image=image)
        assert not report.clean
        # The torn frame never parses, so nothing well-framed is
        # discarded — but the batch's orphaned placement is reclaimed.
        assert report.orphans_reclaimed == 1
        assert recovered.read(0, 1).data == first
        assert recovered.lba_map.get(8) is None  # lost, but cleanly

    def test_unfenced_records_replay_nothing(self):
        journal = MetadataJournal()
        journal.on_new_chunk(1, b"\x01" * 32, 0, 0, 100, CHUNK)
        journal.on_map(8, 1)
        journal.commit()
        image = journal.to_bytes()
        # Cut the COMMIT fence off: nothing before it was acknowledged.
        fence_start = MetadataJournal.frame_spans(image)[-1][1]
        engine = DedupEngine(num_buckets=256)
        report = replay_journal(engine, image[:fence_start])
        assert not report.clean
        assert report.records_replayed == 0
        assert report.records_discarded == 2
        assert len(engine.lba_map) == 0

    def test_snapshots_survive_recovery(self, rng):
        engine, journal = journaled_engine()
        old = rng.randbytes(CHUNK)
        engine.write(0, old)
        engine.create_snapshot("pin")
        engine.write(0, rng.randbytes(CHUNK))  # CoW: old chunk stays
        recovered, report = recover(journal, engine)
        assert report.clean
        assert recovered.snapshots() == ["pin"]
        assert recovered.read_snapshot("pin", 0).data == old

    def test_recovered_journal_is_seeded(self, rng):
        """An armed journal continues the durable history seamlessly."""
        engine, journal = journaled_engine()
        data = rng.randbytes(CHUNK)
        engine.write(0, data)
        image = journal.to_bytes()
        recovered = DedupEngine(
            table=HashPbnTable(1024),
            compressor=ModeledCompressor(0.5),
            containers=copy.deepcopy(engine.containers),
            journal=MetadataJournal(),
        )
        recover_into(recovered, image)
        assert recovered.journal.to_bytes() == image
        # Second-generation crash: keep writing, recover again.
        more = rng.randbytes(CHUNK)
        recovered.write(8, more)
        second, report = recover(recovered.journal, recovered)
        assert report.clean
        assert second.read(0, 1).data == data
        assert second.read(8, 1).data == more

    def test_unjournaled_engine_pays_nothing(self, rng):
        engine = DedupEngine(num_buckets=256, compressor=ModeledCompressor(0.5))
        assert engine.observer is None
        assert engine.journal is None
        engine.write(0, rng.randbytes(CHUNK))  # no observer calls, no error

    def test_journal_size_scales_with_mutations(self, rng):
        engine, journal = journaled_engine()
        engine.write(0, rng.randbytes(CHUNK))
        small = journal.size_bytes
        for lba in range(8, 8 * 20, 8):
            engine.write(lba, rng.randbytes(CHUNK))
        assert journal.size_bytes > 10 * small / 2


class TestCorruptionIsTyped:
    """A semantically impossible *committed* prefix raises, never guesses."""

    def _replay(self, journal):
        engine = DedupEngine(num_buckets=256)
        return replay_journal(engine, journal.to_bytes())

    def test_duplicate_new_chunk_raises(self):
        journal = MetadataJournal()
        journal.on_new_chunk(1, b"\x01" * 32, 0, 0, 100, CHUNK)
        journal.on_new_chunk(2, b"\x01" * 32, 0, 1, 100, CHUNK)
        journal.commit()
        with pytest.raises(JournalCorruptError, match="duplicate NEW_CHUNK"):
            self._replay(journal)

    def test_map_to_unplaced_pbn_raises(self):
        journal = MetadataJournal()
        journal.on_map(8, 42)
        journal.commit()
        with pytest.raises(JournalCorruptError, match="never placed"):
            self._replay(journal)

    def test_repoint_of_unplaced_pbn_raises(self):
        journal = MetadataJournal()
        journal.on_repoint(42, 1, 0)
        journal.commit()
        with pytest.raises(JournalCorruptError, match="never placed"):
            self._replay(journal)

    def test_placement_absent_from_containers_raises(self):
        # CRC-valid journal claiming a chunk the data SSDs don't hold:
        # serving it would be a silent wrong answer, so recovery refuses.
        journal = MetadataJournal()
        journal.on_new_chunk(1, b"\x01" * 32, 0, 0, 100, CHUNK)
        journal.on_map(8, 1)
        journal.commit()
        engine = DedupEngine(num_buckets=256)
        with pytest.raises(JournalCorruptError, match="holds no chunk"):
            recover_into(engine, journal.to_bytes())

    def test_snapshot_delete_of_unknown_raises(self):
        journal = MetadataJournal()
        journal.on_snapshot_delete("ghost")
        journal.commit()
        with pytest.raises(JournalCorruptError, match="unknown snapshot"):
            self._replay(journal)

    def test_snapshot_create_of_existing_raises(self):
        journal = MetadataJournal()
        journal.on_snapshot_create("twice")
        journal.on_snapshot_create("twice")
        journal.commit()
        with pytest.raises(JournalCorruptError, match="existing snapshot"):
            self._replay(journal)


class TestRecoverEngineShim:
    def test_deprecated_but_works(self, rng):
        engine, journal = journaled_engine()
        data = rng.randbytes(CHUNK)
        engine.write(0, data)
        with pytest.warns(DeprecationWarning, match="build_engine"):
            recovered, clean = recover_engine(
                journal.to_bytes(),
                copy.deepcopy(engine.containers),
                ModeledCompressor(0.5),
                num_buckets=1024,
            )
        assert clean
        assert recovered.read(0, 1).data == data


class TestFuzzRecovery:
    """Hypothesis: mangled images recover consistently or raise typed.

    Each workload captures a container-store image at every group-commit
    fence via the journal's ``on_durable`` hook (before that commit's
    deferred frees apply) — exactly the surviving disk state a crash at
    that fence would leave, which is what recovery runs against.
    """

    def _workload(self, seed):
        import random as _random

        rng = _random.Random(seed)
        engine, journal = journaled_engine()
        captures = {0: copy.deepcopy(engine.containers)}
        journal.on_durable = lambda image, stable: captures.__setitem__(
            len(image), copy.deepcopy(engine.containers)
        )
        fences = [(0, {})]  # (durable size, acknowledged state)
        state = {}
        for _ in range(10):
            lba = rng.randrange(8) * 8
            if rng.random() < 0.2 and state:
                engine.trim(lba)
                state.pop(lba, None)
            else:
                data = rng.randbytes(CHUNK)
                engine.write(lba, data)
                state[lba] = data
            fences.append((journal.size_bytes, dict(state)))
        return engine, journal, fences, captures

    def _recover_at(self, captures, fence_size, image):
        recovered = fresh_engine(captures[fence_size])
        report = recover_into(recovered, image)
        return recovered, report

    def _assert_state(self, recovered, expected):
        assert {lba for lba, _ in recovered.lba_map.items()} == set(expected)
        for lba, data in expected.items():
            assert recovered.read(lba, 1).data == data

    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(0, 2**16), cut=st.integers(0, 4000))
    def test_torn_tail_recovers_the_last_fence_state(self, seed, cut):
        _engine, journal, fences, captures = self._workload(seed)
        image = journal.to_bytes()
        cut = min(cut, len(image))
        size, expected = [(s, st) for s, st in fences if s <= cut][-1]
        recovered, report = self._recover_at(captures, size, image[:cut])
        assert report.durable_bytes == size
        # Clean exactly when the cut is a fence boundary: nothing framed
        # or fenced was lost.
        assert report.clean == (cut == size)
        self._assert_state(recovered, expected)

    @settings(max_examples=40, deadline=None)
    @given(
        seed=st.integers(0, 2**16),
        position=st.integers(0, 3999),
        bit=st.integers(0, 7),
    )
    def test_bitflip_recovers_the_preceding_fence(self, seed, position, bit):
        _engine, journal, fences, captures = self._workload(seed)
        image = bytearray(journal.to_bytes())
        position = position % len(image)
        image[position] ^= 1 << bit
        # CRC32 catches any single-bit flip, so recovery lands on the
        # last fence before the flipped byte's frame — an acknowledged
        # state, never a mash.
        spans = MetadataJournal.frame_spans(journal.to_bytes())
        frame_start = max(s for _kind, s, _e in spans if s <= position)
        size, expected = [
            (s, st) for s, st in fences if s <= frame_start
        ][-1]
        recovered, report = self._recover_at(captures, size, bytes(image))
        assert not report.clean
        assert report.durable_bytes == size
        self._assert_state(recovered, expected)

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 2**16), which=st.integers(0, 200))
    def test_duplicated_record_is_refused_typed(self, seed, which):
        _engine, journal, _fences, captures = self._workload(seed)
        image = journal.to_bytes()
        spans = MetadataJournal.frame_spans(image)
        _kind, start, end = spans[which % len(spans)]
        # Re-append one committed frame plus a copy of the final fence:
        # every byte CRC-checks, but the history never happened.  The
        # copied fence's commit sequence regresses, so replay refuses
        # with the typed error instead of serving a fabricated state
        # (PBN reuse could otherwise point an LBA at another LBA's
        # bytes — a silent wrong answer).
        fence_start, fence_end = spans[-1][1], spans[-1][2]
        mangled = image + image[start:end] + image[fence_start:fence_end]
        with pytest.raises(JournalCorruptError):
            self._recover_at(captures, len(image), mangled)

"""Tests for metadata journaling and crash recovery."""


from hypothesis import given, settings, strategies as st

from repro.datared.compression import ModeledCompressor
from repro.datared.dedup import DedupEngine
from repro.datared.hash_pbn import HashPbnTable
from repro.datared.journal import MetadataJournal, RecordKind, recover_engine

CHUNK = 4096


def journaled_engine():
    journal = MetadataJournal()
    engine = DedupEngine(
        table=HashPbnTable(1024),
        compressor=ModeledCompressor(0.5),
        observer=journal,
    )
    return engine, journal


def recover(journal, engine):
    return recover_engine(
        journal.to_bytes(), engine.containers,
        ModeledCompressor(0.5), num_buckets=1024,
    )


class TestJournalFraming:
    def test_empty_decodes_clean(self):
        records, clean = MetadataJournal.decode(b"")
        assert records == [] and clean

    def test_records_roundtrip(self):
        journal = MetadataJournal()
        digest = b"\xab" * 32
        journal.on_new_chunk(7, digest, 2, 64, 2048, 4096)
        journal.on_map(100, 7)
        journal.on_free(3)
        records, clean = MetadataJournal.decode(journal.to_bytes())
        assert clean
        assert [r.kind for r in records] == [
            RecordKind.NEW_CHUNK, RecordKind.MAP, RecordKind.FREE,
        ]
        new_chunk = records[0]
        assert (new_chunk.pbn, new_chunk.digest, new_chunk.container_id,
                new_chunk.offset, new_chunk.stored_size,
                new_chunk.logical_size) == (7, digest, 2, 64, 2048, 4096)
        assert (records[1].lba, records[1].pbn) == (100, 7)

    def test_torn_tail_returns_prefix(self):
        journal = MetadataJournal()
        journal.on_map(1, 1)
        journal.on_map(2, 2)
        image = journal.to_bytes()
        records, clean = MetadataJournal.decode(image[:-3])
        assert not clean
        assert len(records) == 1

    def test_bitflip_detected(self):
        journal = MetadataJournal()
        journal.on_map(1, 1)
        image = bytearray(journal.to_bytes())
        image[7] ^= 0x01  # corrupt the payload
        records, clean = MetadataJournal.decode(bytes(image))
        assert not clean
        assert records == []

    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 200))
    def test_any_truncation_yields_valid_prefix(self, cut):
        journal = MetadataJournal()
        for i in range(10):
            journal.on_new_chunk(i, bytes([i]) * 32, 0, i, 100, CHUNK)
            journal.on_map(i, i)
        image = journal.to_bytes()
        records, _ = MetadataJournal.decode(image[: min(cut, len(image))])
        # Prefix property: records decode in exactly the written order.
        for position, record in enumerate(records):
            expected_kind = (
                RecordKind.NEW_CHUNK if position % 2 == 0 else RecordKind.MAP
            )
            assert record.kind == expected_kind


class TestRecovery:
    def test_full_recovery_preserves_reads(self, rng):
        engine, journal = journaled_engine()
        state = {}
        pool = [rng.randbytes(CHUNK) for _ in range(20)]
        for _ in range(200):
            lba = rng.randrange(60)
            data = pool[rng.randrange(20)] if rng.random() < 0.5 else rng.randbytes(CHUNK)
            engine.write(lba, data)
            state[lba] = data
        recovered, clean = recover(journal, engine)
        assert clean
        for lba, data in state.items():
            assert recovered.read(lba, 1).data == data

    def test_recovered_metadata_matches(self, rng):
        engine, journal = journaled_engine()
        data = rng.randbytes(CHUNK)
        engine.write(0, data)
        engine.write(8, data)  # duplicate
        engine.write(0, rng.randbytes(CHUNK))  # overwrite frees nothing (shared)
        recovered, _ = recover(journal, engine)
        assert len(recovered.lba_map) == len(engine.lba_map)
        assert len(recovered.pbn_map) == len(engine.pbn_map)
        for lba, pbn in engine.lba_map.items():
            assert recovered.lba_map.get(lba) == pbn
        for pbn, record in engine.pbn_map.records():
            assert recovered.pbn_map.get(pbn).refcount == record.refcount

    def test_recovery_restores_dedup_identity(self, rng):
        """New writes of previously stored content still deduplicate."""
        engine, journal = journaled_engine()
        data = rng.randbytes(CHUNK)
        engine.write(0, data)
        recovered, _ = recover(journal, engine)
        report = recovered.write(8, data)
        assert report.duplicate_chunks == 1

    def test_recovery_restores_allocator(self, rng):
        """PBNs freed before the crash are reusable after recovery."""
        engine, journal = journaled_engine()
        engine.write(0, rng.randbytes(CHUNK))
        engine.write(0, rng.randbytes(CHUNK))  # frees the first PBN
        recovered, _ = recover(journal, engine)
        report = recovered.write(8, rng.randbytes(CHUNK))
        assert report.chunks[0].pbn not in (
            pbn for lba, pbn in recovered.lba_map.items() if lba != 8
        )
        # No PBN collision: every mapped LBA still reads correctly.
        assert recovered.read(0, 1).data is not None

    def test_torn_journal_recovers_prefix_state(self, rng):
        engine, journal = journaled_engine()
        first = rng.randbytes(CHUNK)
        engine.write(0, first)
        cut = journal.size_bytes  # crash point: after the first write
        second = rng.randbytes(CHUNK)
        engine.write(8, second)
        image = journal.to_bytes()[: cut + 5]  # tear mid-record
        recovered, clean = recover_engine(
            image, engine.containers, ModeledCompressor(0.5), num_buckets=1024
        )
        assert not clean
        assert recovered.read(0, 1).data == first
        assert recovered.lba_map.get(8) is None  # second write lost, cleanly

    def test_unjournaled_engine_pays_nothing(self, rng):
        engine = DedupEngine(num_buckets=256, compressor=ModeledCompressor(0.5))
        assert engine.observer is None
        engine.write(0, rng.randbytes(CHUNK))  # no observer calls, no error

    def test_journal_size_scales_with_mutations(self, rng):
        engine, journal = journaled_engine()
        engine.write(0, rng.randbytes(CHUNK))
        small = journal.size_bytes
        for lba in range(8, 8 * 20, 8):
            engine.write(lba, rng.randbytes(CHUNK))
        assert journal.size_bytes > 10 * small / 2

"""Engine lifecycle API: flush()/close()/context managers (DESIGN.md §5.10).

The contract is uniform across layers — ``DedupEngine``,
``ShardedDedupEngine``, ``ReductionSystem`` and ``StorageServer`` all
expose ``flush()`` (batch boundary: seal + fence), idempotent
``close()`` (shutdown barrier), and work as context managers.
"""

import pytest

from repro.datared.compression import ModeledCompressor
from repro.datared.dedup import DedupEngine
from repro.datared.journal import MetadataJournal, RecordKind
from repro.datared.sharded import ShardedDedupEngine
from repro.systems import FidrSystem
from repro.systems.config import DurabilityPolicy, SystemConfig
from repro.systems.factory import build_engine
from repro.systems.server import StorageServer

CHUNK = 4096

DURABLE = SystemConfig(durability=DurabilityPolicy(journal=True))


def test_engine_close_is_idempotent(rng):
    engine = DedupEngine(
        num_buckets=256,
        compressor=ModeledCompressor(0.5),
        journal=MetadataJournal(),
    )
    engine.write(0, rng.randbytes(CHUNK))
    engine.close()
    size = engine.journal.size_bytes
    engine.close()
    engine.close()
    assert engine.journal.size_bytes == size


def test_engine_close_seals_open_container(rng):
    engine = DedupEngine(num_buckets=256, compressor=ModeledCompressor(0.5))
    engine.write(0, rng.randbytes(CHUNK))
    assert engine.containers.sealed_count == 0
    engine.close()
    assert engine.containers.sealed_count == 1


def test_engine_context_manager_closes(rng):
    with DedupEngine(
        num_buckets=256, compressor=ModeledCompressor(0.5)
    ) as engine:
        engine.write(0, rng.randbytes(CHUNK))
    assert engine.containers.sealed_count == 1


def test_engine_flush_fences_the_journal(rng):
    engine = DedupEngine(
        num_buckets=256,
        compressor=ModeledCompressor(0.5),
        journal=MetadataJournal(),
    )
    engine.write(0, rng.randbytes(CHUNK))
    engine.flush()
    records, clean = MetadataJournal.decode(engine.journal.to_bytes())
    assert clean
    assert records[-1].kind == RecordKind.COMMIT
    assert engine.journal.staged_bytes == 0


def test_sharded_engine_lifecycle(rng):
    with ShardedDedupEngine(num_shards=2, num_buckets=256) as engine:
        engine.write(0, rng.randbytes(CHUNK))
        engine.flush()
    # close() sealed every shard's open container.
    assert all(
        shard.containers.sealed_count >= 0 for shard in engine.shards
    )
    engine.close()  # idempotent across the cluster


def test_system_context_manager(rng):
    with FidrSystem(config=DURABLE, num_buckets=512) as system:
        system.write(0, rng.randbytes(CHUNK))
        system.flush()
        journal = system.engine.journal
        assert journal is not None and journal.commits >= 1
    system.close()  # idempotent


def test_server_context_manager(rng):
    with StorageServer(FidrSystem(config=DURABLE, num_buckets=512)) as server:
        server.write(0, rng.randbytes(CHUNK))
        server.flush()
    server.close()  # idempotent


def test_close_survives_exception_path(rng):
    engine = build_engine(DURABLE, num_buckets=512)
    with pytest.raises(RuntimeError):
        with engine:
            engine.write(0, rng.randbytes(CHUNK))
            raise RuntimeError("client blew up")
    # The final fence still landed on the exception path.
    records, clean = MetadataJournal.decode(engine.journal.to_bytes())
    assert clean
    assert records[-1].kind == RecordKind.COMMIT

"""Decompressed-read LRU tests (DESIGN.md §5.4).

The cache is keyed by PBN — content-addressed while a PBN is live, but
a *freed* PBN is reallocated by the LIFO free-list for arbitrary new
content, so invalidation on release/GC is load-bearing correctness, not
an optimisation.  The hostile tests here construct exactly that reuse.
"""

from __future__ import annotations

import random

import pytest

from repro.analysis.invariants import check_engine
from repro.datared.chunking import BLOCK_SIZE
from repro.datared.compression import ZlibCompressor
from repro.datared.container import ContainerStore
from repro.datared.dedup import DedupEngine

CHUNK = 4096
BLOCKS = CHUNK // BLOCK_SIZE


def chunk_payload(rng: random.Random, tag: int) -> bytes:
    """A unique, compressible chunk stamped with ``tag``."""
    return bytes([tag]) * 16 + rng.randbytes(CHUNK // 2 - 16) + bytes(CHUNK // 2)


def build_engine(cache_chunks: int, container_size: int = 0) -> DedupEngine:
    containers = (
        ContainerStore(container_size=container_size) if container_size else None
    )
    return DedupEngine(
        num_buckets=256,
        compressor=ZlibCompressor(),
        containers=containers,
        read_cache_chunks=cache_chunks,
    )


class TestReadCacheServing:
    def test_repeat_read_hits_and_skips_storage(self, rng):
        engine = build_engine(cache_chunks=8)
        data = chunk_payload(rng, 1)
        engine.write(0, data)

        first = engine.read(0)
        assert first.data == data
        assert first.cache_hits == 0
        assert engine.read_cache_misses == 1

        second = engine.read(0)
        assert second.data == data
        assert second.cache_hits == 1
        assert second.chunks_read == 1
        # A cache hit moves no stored bytes — that is the point.
        assert second.stored_bytes_read == 0
        assert engine.read_cache_hits == 1

    def test_cache_is_pbn_keyed_so_duplicates_share_entries(self, rng):
        engine = build_engine(cache_chunks=8)
        data = chunk_payload(rng, 2)
        engine.write(0, data)
        engine.write(BLOCKS, data)  # dedup: same PBN, different LBA

        assert engine.read(0).cache_hits == 0  # populates the entry
        hit = engine.read(BLOCKS)  # different LBA, same PBN -> hit
        assert hit.data == data
        assert hit.cache_hits == 1

    def test_capacity_is_bounded_with_lru_eviction(self, rng):
        engine = build_engine(cache_chunks=2)
        payloads = [chunk_payload(rng, tag) for tag in range(4)]
        for index, data in enumerate(payloads):
            engine.write(index * BLOCKS, data)
        for index in range(4):
            engine.read(index * BLOCKS)
        assert engine._read_cache is not None
        assert len(engine._read_cache) == 2
        # Oldest entries were evicted; newest two still hit.
        assert engine.read(2 * BLOCKS).cache_hits == 1
        assert engine.read(3 * BLOCKS).cache_hits == 1
        assert engine.read(0).cache_hits == 0

    def test_disabled_by_default(self, rng):
        engine = DedupEngine(num_buckets=256)
        data = chunk_payload(rng, 3)
        engine.write(0, data)
        assert engine._read_cache is None
        assert engine.read(0).data == data
        assert engine.read(0).cache_hits == 0
        assert engine.read_cache_hits == engine.read_cache_misses == 0

    def test_rejects_negative_capacity(self):
        with pytest.raises(ValueError):
            DedupEngine(num_buckets=256, read_cache_chunks=-1)

    def test_multi_chunk_read_mixes_hits_holes_and_misses(self, rng):
        engine = build_engine(cache_chunks=8)
        cached = chunk_payload(rng, 4)
        fresh = chunk_payload(rng, 5)
        engine.write(0, cached)
        engine.write(2 * BLOCKS, fresh)
        engine.read(0)  # cache position 0; position 1 stays a hole

        report = engine.read(0, 3)
        assert report.data == cached + b"\x00" * CHUNK + fresh
        assert report.cache_hits == 1
        assert report.unmapped_chunks == 1
        assert report.chunks_read == 2  # the hit and the miss


class TestReadCacheInvalidation:
    def test_overwrite_drops_the_stale_entry(self, rng):
        engine = build_engine(cache_chunks=8)
        old = chunk_payload(rng, 6)
        new = chunk_payload(rng, 7)
        engine.write(0, old)
        engine.read(0)  # cache old under its PBN
        engine.write(0, new)  # last ref drops, PBN freed

        report = engine.read(0)
        assert report.data == new
        assert check_engine(engine) == []

    def test_freed_pbn_reuse_cannot_serve_stale_bytes(self, rng):
        """The sharpest corner: LIFO free-list reuse hands a freed PBN
        to *new content* immediately.  A cache entry surviving the free
        would serve the old chunk's bytes at the new chunk's address."""
        engine = build_engine(cache_chunks=8)
        old = chunk_payload(rng, 8)
        replacement = chunk_payload(rng, 9)
        recycled = chunk_payload(rng, 10)

        engine.write(0, old)
        assert engine.read(0).data == old  # old cached under PBN p
        engine.write(0, replacement)  # frees p
        engine.write(BLOCKS, recycled)  # allocator reuses p

        report = engine.read(BLOCKS)
        assert report.data == recycled
        assert report.cache_hits == 0  # must NOT hit the dead entry
        assert engine.read(0).data == replacement
        assert check_engine(engine) == []

    def test_overwrite_then_gc_never_serves_stale(self, rng):
        """Hostile sequence from the issue: populate the cache, kill the
        chunks via overwrite, run GC (which compacts and repoints), keep
        writing so freed PBNs recycle — every read must reflect the
        latest write at every step."""
        engine = build_engine(cache_chunks=32, container_size=16 * 1024)
        rng_local = random.Random(0xCAFE)
        expected = {}

        def write(lba: int, tag: int) -> None:
            data = chunk_payload(rng_local, tag)
            expected[lba] = data
            engine.write(lba, data)

        for index in range(8):
            write(index * BLOCKS, index)
        engine.flush()
        for index in range(8):
            engine.read(index * BLOCKS)  # warm the cache

        # Overwrite half the region: kills old chunks, frees PBNs.
        for index in range(0, 8, 2):
            write(index * BLOCKS, 100 + index)
        engine.flush()
        assert engine.collect_garbage(threshold=0.3) > 0

        # Recycle freed PBNs onto brand-new LBAs.
        for index in range(8, 12):
            write(index * BLOCKS, 200 + index)

        for lba, data in expected.items():
            report = engine.read(lba)
            assert report.data == data, f"stale read at LBA {lba}"
        assert check_engine(engine) == []

    def test_gc_repoint_drops_cache_entries(self, rng):
        engine = build_engine(cache_chunks=32, container_size=16 * 1024)
        survivor_lbas = []
        for index in range(8):
            engine.write(index * BLOCKS, chunk_payload(rng, index))
            if index % 2:
                survivor_lbas.append(index * BLOCKS)
        engine.flush()
        for lba in survivor_lbas:
            engine.read(lba)
        # Kill the even chunks so their containers become GC victims.
        for index in range(0, 8, 2):
            engine.write(index * BLOCKS, chunk_payload(rng, 50 + index))
        engine.flush()

        before = dict(engine._read_cache or {})
        assert engine.collect_garbage(threshold=0.3) > 0
        after = engine._read_cache or {}
        # Conservative hygiene: repointed survivors left the cache even
        # though their bytes did not change.
        assert len(after) < len(before)

        for lba in survivor_lbas:
            assert engine.read(lba).data  # still the right bytes
        assert check_engine(engine) == []

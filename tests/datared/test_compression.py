"""Tests for the compression strategies."""

import pytest
from hypothesis import given, strategies as st

from repro.datared.compression import (
    CompressedChunk,
    ModeledCompressor,
    ZlibCompressor,
    compression_ratio,
)


class TestZlibCompressor:
    def test_roundtrip_compressible(self):
        compressor = ZlibCompressor()
        data = b"pattern" * 600
        chunk = compressor.compress(data)
        assert compressor.decompress(chunk) == data
        assert chunk.stored_size < len(data)

    def test_incompressible_stored_raw(self, rng):
        compressor = ZlibCompressor()
        data = rng.randbytes(4096)
        chunk = compressor.compress(data)
        assert compressor.decompress(chunk) == data
        # Raw escape: at most original size + tag accounting cap.
        assert chunk.stored_size <= len(data)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ZlibCompressor().compress(b"")

    def test_level_validation(self):
        with pytest.raises(ValueError):
            ZlibCompressor(level=10)

    def test_unknown_tag_rejected(self):
        compressor = ZlibCompressor()
        bogus = CompressedChunk(payload=b"\x07junk", logical_size=4, stored_size=5)
        with pytest.raises(ValueError):
            compressor.decompress(bogus)

    def test_size_mismatch_detected(self):
        compressor = ZlibCompressor()
        chunk = compressor.compress(b"abcd" * 100)
        tampered = CompressedChunk(
            payload=chunk.payload, logical_size=9999, stored_size=chunk.stored_size
        )
        with pytest.raises(ValueError):
            compressor.decompress(tampered)

    @given(st.binary(min_size=1, max_size=8192))
    def test_roundtrip_arbitrary(self, data):
        compressor = ZlibCompressor()
        assert compressor.decompress(compressor.compress(data)) == data

    def test_half_compressible_lands_near_half(self, rng):
        data = rng.randbytes(2048) + b"\x00" * 2048
        chunk = ZlibCompressor().compress(data)
        assert 0.45 < chunk.stored_size / len(data) < 0.60


class TestZeroCopyIncompressiblePath:
    """DESIGN.md §5.4: the raw escape stores a *view* of the caller's
    buffer; the one sanctioned copy happens at the container boundary
    via ``materialize()``."""

    def test_raw_escape_borrows_the_callers_buffer(self, rng):
        compressor = ZlibCompressor()
        source = bytearray(rng.randbytes(4096))
        chunk = compressor.compress(source)
        assert chunk.prefix == ZlibCompressor._RAW
        assert type(chunk.payload) is memoryview
        assert chunk.payload.obj is source  # zero-copy, not a snapshot

    def test_materialize_freezes_the_bytes_before_mutation(self, rng):
        compressor = ZlibCompressor()
        source = bytearray(rng.randbytes(4096))
        original = bytes(source)
        chunk = compressor.compress(source)
        container_bytes = chunk.materialize()  # the defensive copy
        source[:16] = b"\xff" * 16  # caller reuses its buffer
        stored = CompressedChunk(
            payload=container_bytes,
            logical_size=chunk.logical_size,
            stored_size=chunk.stored_size,
        )
        assert compressor.decompress(stored) == original

    def test_unmaterialized_view_tracks_mutation(self, rng):
        """The flip side: until materialize(), the chunk *is* the
        caller's buffer.  This pins down the ownership rule the engine
        relies on — copies happen exactly once, at container append."""
        compressor = ZlibCompressor()
        source = bytearray(rng.randbytes(4096))
        chunk = compressor.compress(source)
        source[:16] = b"\xee" * 16
        assert compressor.decompress(chunk) == bytes(source)


class TestModeledCompressor:
    def test_reports_modeled_size_keeps_payload(self):
        compressor = ModeledCompressor(0.5)
        data = b"q" * 4096
        chunk = compressor.compress(data)
        assert chunk.stored_size == 2048
        assert compressor.decompress(chunk) == data

    def test_ratio_validation(self):
        for bad in (0.0, -0.1, 1.5):
            with pytest.raises(ValueError):
                ModeledCompressor(bad)

    def test_minimum_one_byte(self):
        chunk = ModeledCompressor(0.001).compress(b"ab")
        assert chunk.stored_size >= 1

    @given(
        st.floats(min_value=0.05, max_value=1.0),
        st.binary(min_size=16, max_size=4096),
    )
    def test_modeled_size_proportional(self, ratio, data):
        chunk = ModeledCompressor(ratio).compress(data)
        assert chunk.stored_size == max(1, min(len(data), round(len(data) * ratio)))


class TestCompressedChunk:
    def test_validation(self):
        with pytest.raises(ValueError):
            CompressedChunk(payload=b"x", logical_size=0, stored_size=1)
        with pytest.raises(ValueError):
            CompressedChunk(payload=b"x", logical_size=1, stored_size=0)
        with pytest.raises(ValueError):
            CompressedChunk(payload=b"x", logical_size=1, stored_size=0x10000)


class TestCompressionRatio:
    def test_basic(self):
        assert compression_ratio(100, 50) == 0.5

    def test_empty_default(self):
        assert compression_ratio(0, 0, empty=1.0) == 1.0

    def test_empty_without_default_raises(self):
        with pytest.raises(ValueError):
            compression_ratio(0, 0)

"""Shared fixtures for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.datared.compression import ModeledCompressor
from repro.sim.core import Simulator
from repro.workloads.content import ContentFactory


@pytest.fixture
def sim() -> Simulator:
    return Simulator()


@pytest.fixture
def rng() -> random.Random:
    return random.Random(0xFEED)


@pytest.fixture
def content() -> ContentFactory:
    return ContentFactory()


@pytest.fixture
def fast_compressor() -> ModeledCompressor:
    """Size-modelled compressor for tests that don't exercise DEFLATE."""
    return ModeledCompressor(0.5)


def make_chunk(rng: random.Random, size: int = 4096) -> bytes:
    """A random (incompressible) chunk."""
    return rng.randbytes(size)


def make_compressible_chunk(rng: random.Random, size: int = 4096,
                            fraction: float = 0.5) -> bytes:
    """A chunk whose tail is a repeating pattern."""
    head = rng.randbytes(int(size * fraction))
    return head + b"\x00" * (size - len(head))

"""Tests for the repro.errors hierarchy and wire error payloads."""

import pytest

from repro.errors import (
    AlignmentError,
    CapacityError,
    ErrorCode,
    ProtocolError,
    ReproError,
    decode_error_payload,
    encode_error_payload,
    error_code_for,
    exception_for_code,
)


class TestHierarchy:
    def test_all_errors_are_repro_errors(self):
        for klass in (ProtocolError, AlignmentError, CapacityError):
            assert issubclass(klass, ReproError)

    def test_backward_compatible_with_valueerror(self):
        """Pre-v2 callers catch ValueError; the typed classes still land."""
        for klass in (ProtocolError, AlignmentError, CapacityError):
            assert issubclass(klass, ValueError)

    def test_catching_the_base_catches_everything(self):
        with pytest.raises(ReproError):
            raise AlignmentError("LBA 3 is not chunk-aligned")


class TestCodeMapping:
    @pytest.mark.parametrize("exc,code", [
        (AlignmentError("x"), ErrorCode.ALIGNMENT),
        (CapacityError("x"), ErrorCode.CAPACITY),
        (ProtocolError("x"), ErrorCode.BAD_REQUEST),
        (ReproError("x"), ErrorCode.INTERNAL),
        (ValueError("x"), ErrorCode.BAD_REQUEST),
        (RuntimeError("x"), ErrorCode.UNKNOWN),
    ])
    def test_error_code_for(self, exc, code):
        assert error_code_for(exc) is code

    def test_roundtrip_through_wire(self):
        """exception -> code -> payload -> code -> exception class."""
        original = AlignmentError("LBA 5 is not chunk-aligned")
        payload = encode_error_payload(error_code_for(original), str(original))
        code, message = decode_error_payload(payload)
        assert code is ErrorCode.ALIGNMENT
        assert message == str(original)
        assert exception_for_code(code) is AlignmentError

    def test_unknown_code_degrades_to_protocol_error(self):
        assert exception_for_code(999) is ProtocolError


class TestPayloadFormat:
    def test_structured_payload(self):
        payload = encode_error_payload(ErrorCode.CAPACITY, "full")
        assert decode_error_payload(payload) == (ErrorCode.CAPACITY, "full")

    def test_legacy_free_text_payload(self):
        """Pre-v2 servers sent bare ASCII; decoding must not mangle it."""
        code, message = decode_error_payload(b"empty write")
        assert code is ErrorCode.UNKNOWN
        assert message == "empty write"

    def test_empty_payload(self):
        code, message = decode_error_payload(b"")
        assert code is ErrorCode.UNKNOWN
        assert message == ""

    def test_unrecognized_numeric_code(self):
        payload = b"\x00\xff" + b"odd"
        code, message = decode_error_payload(payload)
        assert code is ErrorCode.UNKNOWN
        assert message == "odd"

"""Tests for the DRAM and CPU ledgers."""

import pytest

from repro.hw.cpu import CpuLedger
from repro.hw.memory import MemoryLedger
from repro.hw.specs import HIGH_END_SOCKET_DRAM, XEON_E5_4669V4


class TestMemoryLedger:
    def test_read_write_accumulate(self):
        ledger = MemoryLedger()
        ledger.read("path", 100)
        ledger.write("path", 50)
        traffic = ledger.path_traffic("path")
        assert traffic.bytes_read == 100
        assert traffic.bytes_written == 50
        assert ledger.total_bytes == 150

    def test_through_counts_both_directions(self):
        ledger = MemoryLedger()
        ledger.through("buffer", 100)
        assert ledger.total_bytes == 200

    def test_negative_rejected(self):
        ledger = MemoryLedger()
        with pytest.raises(ValueError):
            ledger.read("x", -1)

    def test_breakdown_sums_to_one(self):
        ledger = MemoryLedger()
        ledger.read("a", 300)
        ledger.write("b", 100)
        breakdown = ledger.breakdown()
        assert breakdown["a"] == pytest.approx(0.75)
        assert sum(breakdown.values()) == pytest.approx(1.0)

    def test_empty_breakdown(self):
        assert MemoryLedger().breakdown() == {}

    def test_bandwidth_demand_is_linear(self):
        ledger = MemoryLedger()
        ledger.through("x", 1000)  # 2000 bytes of traffic for 1000 logical
        assert ledger.bandwidth_demand(10e9, 1000) == pytest.approx(20e9)
        assert ledger.amplification(1000) == pytest.approx(2.0)

    def test_demand_requires_logical_bytes(self):
        with pytest.raises(ValueError):
            MemoryLedger().bandwidth_demand(1e9, 0)

    def test_utilization_against_spec(self):
        ledger = MemoryLedger(HIGH_END_SOCKET_DRAM)
        ledger.through("x", 1000)
        utilization = ledger.utilization(85e9, 1000)
        assert utilization == pytest.approx(170e9 / HIGH_END_SOCKET_DRAM.peak_bw)

    def test_capacity_tracks_peak(self):
        ledger = MemoryLedger()
        ledger.require_capacity("cache", 100)
        ledger.require_capacity("cache", 50)  # lower: ignored
        assert ledger.path_traffic("cache").capacity_bytes == 100
        assert ledger.capacity_demand() == 100


class TestCpuLedger:
    def test_charges_accumulate(self):
        ledger = CpuLedger()
        ledger.charge("task", 100)
        ledger.charge("task", 50)
        assert ledger.tasks()["task"] == 150

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            CpuLedger().charge("x", -1)

    def test_breakdown(self):
        ledger = CpuLedger()
        ledger.charge("a", 75)
        ledger.charge("b", 25)
        assert ledger.breakdown() == {"a": 0.75, "b": 0.25}

    def test_cores_required_projection(self):
        ledger = CpuLedger(XEON_E5_4669V4)
        # 2.2 cycles per byte at 2.2 GHz -> 1 core per GB/s.
        ledger.charge("work", 2.2 * 1000)
        assert ledger.cores_required(10e9, 1000) == pytest.approx(10.0)

    def test_utilization(self):
        ledger = CpuLedger(XEON_E5_4669V4)
        ledger.charge("work", 2.2 * 1000)
        assert ledger.utilization(22e9, 1000) == pytest.approx(1.0)

    def test_grouped_breakdown_with_other(self):
        ledger = CpuLedger()
        ledger.charge("a", 50)
        ledger.charge("b", 30)
        ledger.charge("unlisted", 20)
        groups = ledger.grouped_breakdown({"a": "mgmt", "b": "mgmt"})
        assert groups == {"mgmt": pytest.approx(0.8), "other": pytest.approx(0.2)}

    def test_requires_spec_for_utilization(self):
        ledger = CpuLedger()
        ledger.charge("x", 1)
        with pytest.raises(ValueError):
            ledger.utilization(1e9, 1)

"""Tests for the NIC and FPGA engine models."""

import pytest

from repro.datared.compression import ModeledCompressor, ZlibCompressor
from repro.datared.hashing import fingerprint
from repro.hw.fpga import CompressionEngine, DecompressionEngine, HashAccelerator
from repro.hw.nic import BaselineNic, FidrNic
from repro.hw.specs import NicSpec


class TestBaselineNic:
    def test_receive_charges_pcie(self):
        nic = BaselineNic()
        nic.receive(1000)
        assert nic.traffic.network_rx == 1000
        assert nic.traffic.pcie_to_host == 1000

    def test_send(self):
        nic = BaselineNic()
        nic.send(400)
        assert nic.traffic.network_tx == 400
        assert nic.traffic.pcie_from_host == 400


class TestFidrNicWritePath:
    def test_buffer_and_hash(self, rng):
        nic = FidrNic()
        data = rng.randbytes(4096)
        nic.buffer_write(5, data)
        assert nic.pending_chunks() == 1
        assert nic.buffered_bytes == 4096
        assert nic.traffic.hashed_bytes == 4096
        staged = nic.ship_digests(1)
        assert staged[0].digest == fingerprint(data)

    def test_digests_only_cross_pcie(self, rng):
        nic = FidrNic()
        for lba in range(4):
            nic.buffer_write(lba, rng.randbytes(4096))
        before = nic.traffic.pcie_to_host
        nic.ship_digests(4)
        assert nic.traffic.pcie_to_host - before == 4 * 32

    def test_overwrite_in_buffer_replaces(self, rng):
        nic = FidrNic()
        nic.buffer_write(1, rng.randbytes(4096))
        newer = rng.randbytes(4096)
        nic.buffer_write(1, newer)
        assert nic.pending_chunks() == 1
        assert nic.lookup_read(1) == newer

    def test_buffer_capacity_enforced(self, rng):
        small = NicSpec(name="small", network_bw=1e9, buffer_capacity=8192,
                        hash_bw=1e9)
        nic = FidrNic(small)
        nic.buffer_write(0, rng.randbytes(4096))
        nic.buffer_write(1, rng.randbytes(4096))
        with pytest.raises(OverflowError):
            nic.buffer_write(2, rng.randbytes(4096))

    def test_schedule_unique_filters(self, rng):
        nic = FidrNic()
        for lba in range(3):
            nic.buffer_write(lba, rng.randbytes(4096))
        staged = nic.ship_digests(3)
        flags = [(staged[0], True), (staged[1], False), (staged[2], True)]
        unique = nic.schedule_unique(flags)
        assert [entry.lba for entry in unique] == [0, 2]
        assert nic.pending_chunks() == 0
        assert nic.buffered_bytes == 0

    def test_empty_chunk_rejected(self):
        with pytest.raises(ValueError):
            FidrNic().buffer_write(0, b"")


class TestFidrNicReadPath:
    def test_buffer_hit_serves_locally(self, rng):
        nic = FidrNic()
        data = rng.randbytes(4096)
        nic.buffer_write(9, data)
        assert nic.lookup_read(9) == data
        assert nic.read_buffer_hits == 1
        assert nic.traffic.network_tx == 4096

    def test_miss_counts(self):
        nic = FidrNic()
        assert nic.lookup_read(1) is None
        assert nic.read_buffer_misses == 1

    def test_send_read_data(self):
        nic = FidrNic()
        nic.send_read_data(b"z" * 4096)
        assert nic.traffic.network_tx == 4096
        assert nic.traffic.pcie_from_host == 4096


class TestHashAccelerator:
    def test_batch_hashing(self, rng):
        accel = HashAccelerator(hash_bw=8e9)
        chunks = [rng.randbytes(4096) for _ in range(3)]
        digests = accel.hash_batch(chunks)
        assert digests == [fingerprint(c) for c in chunks]
        assert accel.chunks_hashed == 3
        assert accel.traffic.payload_processed == 3 * 4096

    def test_timing(self):
        accel = HashAccelerator(hash_bw=8e9)
        assert accel.hashing_time(8e9) == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            HashAccelerator(hash_bw=0)


class TestCompressionEngine:
    def test_batch_threshold_signals(self, rng):
        engine = CompressionEngine(
            compressor=ModeledCompressor(0.5), batch_threshold=4096
        )
        _, ready = engine.compress_chunk(rng.randbytes(4096))  # 2 KB stored
        assert not ready
        _, ready = engine.compress_chunk(rng.randbytes(4096))  # 4 KB total
        assert ready
        batch = engine.take_batch()
        assert len(batch) == 2
        assert engine.pending_bytes == 0
        assert engine.batches_completed == 1

    def test_real_compression_roundtrip(self):
        engine = CompressionEngine(compressor=ZlibCompressor())
        data = b"abc" * 1400
        chunk, _ = engine.compress_chunk(data)
        assert ZlibCompressor().decompress(chunk) == data

    def test_traffic_accounting(self, rng):
        engine = CompressionEngine(compressor=ModeledCompressor(0.5))
        engine.compress_chunk(rng.randbytes(4096))
        assert engine.traffic.pcie_in == 4096
        assert engine.traffic.board_dram == 4096 + 2048

    def test_timing(self):
        engine = CompressionEngine(compress_bw=12.8e9)
        assert engine.compression_time(12.8e9) == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            CompressionEngine(batch_threshold=0)


class TestDecompressionEngine:
    def test_roundtrip_and_accounting(self):
        compressor = ZlibCompressor()
        engine = DecompressionEngine(compressor=compressor)
        data = b"xyz" * 1400
        compressed = compressor.compress(data)
        assert engine.decompress_chunk(compressed) == data
        assert engine.chunks_decompressed == 1
        assert engine.traffic.pcie_in == compressed.stored_size
        assert engine.traffic.pcie_out == len(data)

"""Tests for the NVMe SSD models."""

import pytest

from repro.datared.hash_pbn import Bucket, HashPbnTable
from repro.datared.hashing import fingerprint
from repro.hw.specs import SAMSUNG_970_PRO, SsdSpec
from repro.hw.ssd import NvmeSsd, SsdArray, SsdBucketStore


class TestNvmeSsd:
    def test_write_read_roundtrip(self):
        ssd = NvmeSsd()
        ssd.write_block(5, b"hello")
        assert ssd.read_block(5) == b"hello"

    def test_missing_read_raises(self):
        with pytest.raises(KeyError):
            NvmeSsd().read_block(1)

    def test_io_stats(self):
        ssd = NvmeSsd()
        ssd.write_block(1, b"abc")
        ssd.read_block(1)
        assert ssd.stats.write_ops == 1
        assert ssd.stats.read_ops == 1
        assert ssd.stats.bytes_written == 3
        assert ssd.stats.bytes_read == 3

    def test_overwrite_replaces_capacity_use(self):
        ssd = NvmeSsd()
        ssd.write_block(1, b"x" * 100)
        ssd.write_block(1, b"y" * 60)
        assert ssd.bytes_stored == 60

    def test_capacity_enforced(self):
        tiny = SsdSpec(
            name="tiny", capacity=100, read_bw=1e9, write_bw=1e9,
            read_iops=1e5, write_iops=1e5,
            read_latency_s=1e-5, write_latency_s=1e-5,
        )
        ssd = NvmeSsd(spec=tiny)
        ssd.write_block(0, b"x" * 100)
        with pytest.raises(RuntimeError):
            ssd.write_block(1, b"y")

    def test_trim_releases_space(self):
        ssd = NvmeSsd()
        ssd.write_block(1, b"x" * 50)
        ssd.trim(1)
        assert ssd.bytes_stored == 0

    def test_accounting_only_io(self):
        ssd = NvmeSsd()
        ssd.account_read(1000, ops=2)
        ssd.account_write(500)
        assert ssd.stats.read_ops == 2
        assert ssd.stats.bytes_read == 1000
        assert ssd.stats.bytes_written == 500

    def test_service_times(self):
        ssd = NvmeSsd(spec=SAMSUNG_970_PRO)
        read_time = ssd.read_service_time(3.5e9)  # one second of transfer
        assert read_time == pytest.approx(1.0 + 80e-6)

    def test_utilization_projection(self):
        ssd = NvmeSsd(spec=SAMSUNG_970_PRO)
        ssd.account_read(3.5e9)
        # Reading 3.5 GB per 1 GB of client data at 1 GB/s client rate
        # saturates the 3.5 GB/s drive.
        assert ssd.utilization(1e9, 1e9) == pytest.approx(1.0)

    def test_validation(self):
        ssd = NvmeSsd()
        with pytest.raises(ValueError):
            ssd.write_block(-1, b"x")
        with pytest.raises(ValueError):
            ssd.write_block(0, b"")


class TestSsdArray:
    def test_round_robin_striping(self):
        array = SsdArray(2)
        array.write_block(0, b"even")
        array.write_block(1, b"odd")
        assert array.drives[0].stats.write_ops == 1
        assert array.drives[1].stats.write_ops == 1
        assert array.read_block(0) == b"even"
        assert array.read_block(1) == b"odd"

    def test_combined_stats(self):
        array = SsdArray(3)
        for address in range(6):
            array.write_block(address, b"x")
        assert array.stats.write_ops == 6

    def test_aggregate_bandwidth(self):
        array = SsdArray(4, spec=SAMSUNG_970_PRO)
        assert array.read_bw == pytest.approx(4 * 3.5e9)
        assert len(array) == 4

    def test_at_least_one(self):
        with pytest.raises(ValueError):
            SsdArray(0)


class TestSsdBucketStore:
    def test_unwritten_bucket_reads_empty(self):
        store = SsdBucketStore(SsdArray(2))
        page = store.read_bucket(7)
        assert Bucket.from_bytes(page).entries == []

    def test_write_read(self):
        store = SsdBucketStore(SsdArray(2))
        bucket = Bucket()
        bucket.insert(fingerprint(b"k"), 9)
        store.write_bucket(3, bucket.to_bytes())
        assert Bucket.from_bytes(store.read_bucket(3)).entries == bucket.entries

    def test_queue_owner_validated(self):
        with pytest.raises(ValueError):
            SsdBucketStore(SsdArray(1), queue_owner="gpu")

    def test_page_size_enforced(self):
        with pytest.raises(ValueError):
            SsdBucketStore(SsdArray(1)).write_bucket(0, b"small")

    def test_full_table_over_ssd_array(self):
        store = SsdBucketStore(SsdArray(2))
        table = HashPbnTable(32, store=store)
        digests = [fingerprint(str(i).encode()) for i in range(200)]
        for position, digest in enumerate(digests):
            table.insert(digest, position)
        for position, digest in enumerate(digests):
            assert table.lookup(digest) == position

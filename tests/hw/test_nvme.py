"""Tests for the NVMe queue-pair machinery."""

import pytest

from repro.datared.hash_pbn import Bucket, HashPbnTable
from repro.datared.hashing import fingerprint
from repro.hw.nvme import (
    NvmeCommand,
    NvmeController,
    NvmeOpcode,
    QueueFull,
    QueuePair,
    QueuedBucketStore,
    SubmissionQueue,
)
from repro.hw.ssd import NvmeSsd, SsdArray


class TestRing:
    def test_push_pop_fifo(self):
        ring = SubmissionQueue(4)
        for value in (1, 2, 3):
            ring.push(value)
        assert [ring.pop() for _ in range(3)] == [1, 2, 3]

    def test_full_raises(self):
        ring = SubmissionQueue(2)
        ring.push(1)
        ring.push(2)
        with pytest.raises(QueueFull):
            ring.push(3)

    def test_empty_pop_raises(self):
        with pytest.raises(IndexError):
            SubmissionQueue(2).pop()

    def test_wraparound_many_times(self):
        ring = SubmissionQueue(4)
        for round_number in range(25):
            for value in range(3):
                ring.push((round_number, value))
            for value in range(3):
                assert ring.pop() == (round_number, value)
        assert ring.is_empty

    def test_depth_validation(self):
        for bad in (0, 1, 3, 6):
            with pytest.raises(ValueError):
                SubmissionQueue(bad)

    def test_occupancy(self):
        ring = SubmissionQueue(4)
        ring.push(1)
        ring.push(2)
        assert ring.occupancy == 2
        ring.pop()
        assert ring.occupancy == 1


class TestCommand:
    def test_write_requires_data(self):
        with pytest.raises(ValueError):
            NvmeCommand(0, NvmeOpcode.WRITE, 0)

    def test_unknown_opcode(self):
        with pytest.raises(ValueError):
            NvmeCommand(0, "flush", 0)


class TestQueuePair:
    def test_submit_assigns_ids(self):
        pair = QueuePair(depth=8)
        first = pair.submit(NvmeOpcode.READ, 0)
        second = pair.submit(NvmeOpcode.READ, 1)
        assert second == first + 1
        assert pair.stats.submissions == 2

    def test_owner_validation(self):
        with pytest.raises(ValueError):
            QueuePair(owner="gpu")

    def test_backpressure(self):
        pair = QueuePair(depth=2)
        pair.submit(NvmeOpcode.READ, 0)
        pair.submit(NvmeOpcode.READ, 1)
        with pytest.raises(QueueFull):
            pair.submit(NvmeOpcode.READ, 2)


class TestController:
    def test_write_then_read_roundtrip(self):
        ssd = NvmeSsd()
        pair = QueuePair(depth=8)
        controller = NvmeController(ssd, pair)
        pair.submit(NvmeOpcode.WRITE, 5, b"payload")
        read_id = pair.submit(NvmeOpcode.READ, 5)
        assert controller.process() == 2
        completions = {c.command_id: c for c in pair.reap()}
        assert completions[read_id].data == b"payload"
        assert all(c.status == 0 for c in completions.values())

    def test_read_missing_fails_status(self):
        ssd = NvmeSsd()
        pair = QueuePair(depth=8)
        controller = NvmeController(ssd, pair)
        pair.submit(NvmeOpcode.READ, 99)
        controller.process()
        (completion,) = pair.reap()
        assert completion.status == 1

    def test_process_limit(self):
        ssd = NvmeSsd()
        pair = QueuePair(depth=16)
        controller = NvmeController(ssd, pair)
        for address in range(6):
            pair.submit(NvmeOpcode.WRITE, address, b"x")
        assert controller.process(limit=4) == 4
        assert controller.process() == 2


class TestQueuedBucketStore:
    def test_unwritten_reads_empty(self):
        store = QueuedBucketStore(SsdArray(2))
        assert Bucket.from_bytes(store.read_bucket(3)).entries == []

    def test_hash_table_over_queued_store(self):
        store = QueuedBucketStore(SsdArray(2))
        table = HashPbnTable(32, store=store)
        digests = [fingerprint(str(i).encode()) for i in range(120)]
        for position, digest in enumerate(digests):
            table.insert(digest, position)
        for position, digest in enumerate(digests):
            assert table.lookup(digest) == position

    def test_doorbells_counted_per_owner(self):
        for owner in ("host", "engine"):
            store = QueuedBucketStore(SsdArray(1), owner=owner)
            store.write_bucket(0, Bucket().to_bytes())
            store.read_bucket(0)
            assert store.owner == owner
            # write: 1 submit + 1 reap; read: 1 submit + 1 reap.
            assert store.doorbell_interactions == 4

    def test_lanes_spread_across_drives(self):
        array = SsdArray(2)
        store = QueuedBucketStore(array)
        store.write_bucket(0, Bucket().to_bytes())
        store.write_bucket(1, Bucket().to_bytes())
        assert array.drives[0].stats.write_ops == 1
        assert array.drives[1].stats.write_ops == 1

    def test_page_size_enforced(self):
        with pytest.raises(ValueError):
            QueuedBucketStore(SsdArray(1)).write_bucket(0, b"tiny")

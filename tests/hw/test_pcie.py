"""Tests for the PCIe topology and peer-to-peer accounting."""

import pytest

from repro.hw.pcie import HOST, PcieTopology
from repro.hw.specs import PCIE3_X4


def two_switch_topology():
    topology = PcieTopology(num_switches=2, root_complex_bw=128e9)
    topology.attach("nic", switch=0)
    topology.attach("engine", switch=0)
    topology.attach("ssd", switch=1)
    return topology


class TestConstruction:
    def test_attach_and_lookup(self):
        topology = PcieTopology()
        device = topology.attach("dev", link=PCIE3_X4)
        assert topology.device("dev") is device
        assert device.link.lanes == 4

    def test_duplicate_name_rejected(self):
        topology = PcieTopology()
        topology.attach("dev")
        with pytest.raises(ValueError):
            topology.attach("dev")

    def test_host_name_reserved(self):
        with pytest.raises(ValueError):
            PcieTopology().attach(HOST)

    def test_unknown_switch_rejected(self):
        with pytest.raises(ValueError):
            PcieTopology(num_switches=1).attach("dev", switch=3)

    def test_unknown_device_lookup(self):
        with pytest.raises(KeyError):
            PcieTopology().device("ghost")


class TestRouting:
    def test_same_switch_is_p2p(self):
        topology = two_switch_topology()
        topology.transfer("nic", "engine", 1000)
        assert topology.p2p_bytes == 1000
        assert topology.root_complex_bytes == 0
        assert topology.device("nic").bytes_out == 1000
        assert topology.device("engine").bytes_in == 1000

    def test_cross_switch_crosses_root(self):
        topology = two_switch_topology()
        topology.transfer("nic", "ssd", 500)
        assert topology.p2p_bytes == 0
        assert topology.root_complex_bytes == 500

    def test_host_transfers_cross_root(self):
        topology = two_switch_topology()
        topology.transfer("nic", HOST, 100)
        topology.transfer(HOST, "ssd", 200)
        assert topology.root_complex_bytes == 300

    def test_self_transfer_rejected(self):
        topology = two_switch_topology()
        with pytest.raises(ValueError):
            topology.transfer("nic", "nic", 10)

    def test_negative_rejected(self):
        topology = two_switch_topology()
        with pytest.raises(ValueError):
            topology.transfer("nic", "engine", -5)

    def test_p2p_fraction(self):
        topology = two_switch_topology()
        topology.transfer("nic", "engine", 900)  # P2P
        topology.transfer("nic", HOST, 100)  # root
        assert topology.p2p_fraction() == pytest.approx(0.9)

    def test_p2p_fraction_empty(self):
        assert two_switch_topology().p2p_fraction() == 0.0


class TestUtilization:
    def test_device_link_utilization(self):
        topology = two_switch_topology()
        topology.transfer("nic", "engine", 1000)
        # 1000 bytes out per 1000 logical bytes at 12.8 GB/s link.
        utilization = topology.device_utilization("nic", 12.8e9, 1000)
        assert utilization == pytest.approx(1.0)

    def test_busier_direction_binds(self):
        topology = two_switch_topology()
        topology.transfer("nic", "engine", 1000)
        topology.transfer("engine", "nic", 100)
        assert topology.device_utilization("nic", 12.8e9, 1000) == pytest.approx(1.0)

    def test_root_complex_utilization(self):
        topology = two_switch_topology()
        topology.transfer("nic", HOST, 1000)
        utilization = topology.root_complex_utilization(128e9, 1000)
        assert utilization == pytest.approx(1.0)

    def test_requires_logical_bytes(self):
        topology = two_switch_topology()
        with pytest.raises(ValueError):
            topology.device_utilization("nic", 1e9, 0)

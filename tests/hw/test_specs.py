"""Tests for the hardware spec constants (paper anchors)."""

import pytest

from repro.hw.specs import (
    HIGH_END_SOCKET_DRAM,
    PCIE3_X16,
    PROTOTYPE_SERVER,
    SAMSUNG_970_PRO,
    SOCKET_PCIE_1TBPS,
    TARGET_SERVER,
    VCU1525,
    XEON_E5_2650V4,
    XEON_E5_4669V4,
)


class TestPaperAnchors:
    def test_high_end_socket_is_170gbps(self):
        # §3.2.1: "the theoretical bandwidth that a socket can provide
        # is only 170 GB/s".
        assert HIGH_END_SOCKET_DRAM.peak_bw == pytest.approx(170e9)
        assert HIGH_END_SOCKET_DRAM.channels == 8

    def test_socket_pcie_is_1tbps(self):
        # §1 footnote: 1 Tbps = 128 GB/s of socket IO.
        assert SOCKET_PCIE_1TBPS == pytest.approx(128e9)

    def test_target_cpu_is_22_cores(self):
        assert XEON_E5_4669V4.cores == 22

    def test_prototype_cpu(self):
        assert XEON_E5_2650V4.cores == 12

    def test_vcu1525_matches_table_percentages(self):
        # Table 4: 290 K LUTs is 24.5% -> ~1.18 M total.
        assert 290_000 / VCU1525.luts == pytest.approx(0.245, abs=0.005)
        # Table 5: 756 URAMs is 78.8% -> 960 total.
        assert 756 / VCU1525.urams == pytest.approx(0.788, abs=0.005)

    def test_vcu1525_board(self):
        # §4.3: 64 GB DRAM, 16 GB/s PCIe on the VCU1525.
        assert VCU1525.board_dram_capacity == 64 * (1 << 30)
        assert VCU1525.pcie.bw == pytest.approx(12.8e9)

    def test_pcie_x16_usable_bandwidth(self):
        assert PCIE3_X16.bw == pytest.approx(12.8e9)

    def test_servers_are_consistent(self):
        for server in (PROTOTYPE_SERVER, TARGET_SERVER):
            assert server.num_data_ssds >= 1
            assert server.num_table_ssds >= 1
            assert server.dram.peak_bw > 0
            assert server.socket_pcie_bw > 0

    def test_970_pro(self):
        assert SAMSUNG_970_PRO.read_bw == pytest.approx(3.5e9)
        assert SAMSUNG_970_PRO.capacity == 1000e9

"""Tests for the FPGA resource estimator (Tables 4-5)."""

import pytest

from repro.hw.fpga_resources import (
    ResourceCount,
    estimate_cache_engine_resources,
    estimate_nic_resources,
    tree_geometry,
)
from repro.hw.specs import VCU1525

MB = 1024 * 1024


class TestResourceCount:
    def test_addition(self):
        total = ResourceCount(1, 2, 3, 4) + ResourceCount(10, 20, 30, 40)
        assert (total.luts, total.flip_flops, total.brams, total.urams) == (
            11, 22, 33, 44,
        )

    def test_utilization_fractions(self):
        count = ResourceCount(luts=VCU1525.luts // 2, flip_flops=0, brams=0)
        assert count.utilization(VCU1525)["luts"] == pytest.approx(0.5)


class TestNicEstimate:
    def test_write_only_matches_table4(self):
        rows = estimate_nic_resources(line_rate=8e9, write_fraction=1.0)
        reduction = rows["data_reduction_support"]
        assert reduction.luts == pytest.approx(125_000, rel=0.05)
        assert reduction.brams == pytest.approx(95, rel=0.05)
        total = rows["total"]
        assert total.utilization(VCU1525)["luts"] == pytest.approx(0.245, abs=0.01)
        assert total.utilization(VCU1525)["brams"] == pytest.approx(0.518, abs=0.01)

    def test_mixed_needs_half_the_hash_cores(self):
        write_only = estimate_nic_resources(8e9, 1.0)["data_reduction_support"]
        mixed = estimate_nic_resources(8e9, 0.5)["data_reduction_support"]
        assert mixed.luts < write_only.luts
        assert mixed.luts == pytest.approx(84_000, rel=0.05)

    def test_scales_with_line_rate(self):
        slow = estimate_nic_resources(2e9, 1.0)["data_reduction_support"]
        fast = estimate_nic_resources(16e9, 1.0)["data_reduction_support"]
        assert fast.luts > slow.luts

    def test_validation(self):
        with pytest.raises(ValueError):
            estimate_nic_resources(0)
        with pytest.raises(ValueError):
            estimate_nic_resources(8e9, 1.5)


class TestTreeGeometry:
    def test_medium_tree_is_8_plus_1(self):
        geometry = tree_geometry(410 * MB)
        assert geometry.on_chip_levels == 8
        assert geometry.off_chip_levels == 1

    def test_large_tree_is_13_plus_1(self):
        geometry = tree_geometry(99_645 * MB)
        assert geometry.on_chip_levels == 13

    def test_levels_grow_logarithmically(self):
        small = tree_geometry(10 * MB).on_chip_levels
        large = tree_geometry(100_000 * MB).on_chip_levels
        assert small < large <= small + 10

    def test_validation(self):
        with pytest.raises(ValueError):
            tree_geometry(0)


class TestCacheEngineEstimate:
    def test_medium_tree_fits_bram(self):
        result = estimate_cache_engine_resources(410 * MB, with_table_ssd=False)
        resources = result["resources"]
        assert resources.urams == 0
        assert resources.luts == pytest.approx(316_000, rel=0.03)

    def test_large_tree_spills_to_uram(self):
        result = estimate_cache_engine_resources(99_645 * MB, with_table_ssd=False)
        resources = result["resources"]
        assert resources.urams > 0
        share = resources.urams / VCU1525.urams
        assert share == pytest.approx(0.788, abs=0.06)  # Table 5: 78.8%

    def test_table_ssd_controllers_add_resources(self):
        with_ssd = estimate_cache_engine_resources(410 * MB, True)["resources"]
        without = estimate_cache_engine_resources(410 * MB, False)["resources"]
        assert with_ssd.luts > without.luts
        assert with_ssd.brams > without.brams

"""Test package."""

"""Tests for the shared experiment harness."""

import pytest

from repro.experiments.common import (
    SMOKE_SCALE,
    ExperimentResult,
    Scale,
    clear_report_cache,
    get_report,
)


class TestScale:
    def test_hashable_and_frozen(self):
        assert hash(Scale()) == hash(Scale())
        with pytest.raises(Exception):
            Scale().num_chunks = 5


class TestReportCache:
    def test_same_key_returns_same_object(self):
        clear_report_cache()
        first = get_report("fidr", "write-h", SMOKE_SCALE)
        second = get_report("fidr", "write-h", SMOKE_SCALE)
        assert first is second

    def test_distinct_flavours_distinct_reports(self):
        fidr = get_report("fidr", "write-h", SMOKE_SCALE)
        baseline = get_report("baseline", "write-h", SMOKE_SCALE)
        assert fidr is not baseline
        assert baseline.memory_amplification() > fidr.memory_amplification()

    def test_server_choice_changes_spec(self):
        prototype = get_report("fidr", "write-h", SMOKE_SCALE, server="prototype")
        target = get_report("fidr", "write-h", SMOKE_SCALE, server="target")
        assert target.server.cpu.cores == 22
        assert prototype.server.cpu.cores == 12

    def test_unknown_flavour_rejected(self):
        with pytest.raises(ValueError):
            get_report("gpu-only", "write-h", SMOKE_SCALE)

    def test_clear_cache(self):
        first = get_report("fidr", "write-h", SMOKE_SCALE)
        clear_report_cache()
        second = get_report("fidr", "write-h", SMOKE_SCALE)
        assert first is not second


class TestExperimentResult:
    def test_render_contains_sections(self):
        result = ExperimentResult(
            name="Demo", headline="something happened",
            tables=["a table"],
        )
        text = result.render()
        assert "Demo" in text and "something happened" in text
        assert "a table" in text

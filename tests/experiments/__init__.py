"""Test package."""

"""Tests for the experiments command-line entry point."""

import json


from repro.experiments.__main__ import main


class TestCli:
    def test_single_experiment(self, capsys):
        assert main(["tab04"]) == 0
        out = capsys.readouterr().out
        assert "Table 4" in out
        assert "paper" in out

    def test_unknown_name(self, capsys):
        assert main(["figure-999"]) == 2
        assert "unknown experiments" in capsys.readouterr().err

    def test_json_export(self, tmp_path, capsys):
        path = str(tmp_path / "out.json")
        assert main(["tab04", "--json", path]) == 0
        payload = json.loads(open(path).read())
        assert "tab04" in payload
        record = payload["tab04"]
        assert record["title"] == "Table 4"
        assert record["comparisons"]
        first = record["comparisons"][0]
        assert {"metric", "paper", "measured", "relative_error"} <= set(first)

    def test_json_requires_path(self, capsys):
        assert main(["tab04", "--json"]) == 2

"""Experiment smoke tests: every table/figure regenerates at small scale
and its directional claims hold.

These run the full pipeline (workload synthesis → system replay →
projection) at SMOKE_SCALE, so they assert *directions and orderings*
(who wins, where the dips are), not the paper's absolute values — the
benchmarks regenerate those at full scale.
"""

import pytest

from repro.experiments import (
    ALL_EXPERIMENTS,
    SMOKE_SCALE,
    clear_report_cache,
    get_report,
)
from repro.experiments import (
    fig03_large_chunking,
    fig04_membw,
    fig05_cpu,
    fig11_membw,
    fig12_cpu,
    fig13_tree,
    fig14_throughput,
    fig15_cost_scaling,
    fig16_cost_breakdown,
    latency,
    tab01_membw_breakdown,
    tab02_cpu_breakdown,
    tab03_workloads,
    tab04_nic_resources,
    tab05_cache_engine,
)


@pytest.fixture(scope="module", autouse=True)
def fresh_cache():
    clear_report_cache()
    yield
    clear_report_cache()


class TestFig03:
    def test_amplification_monotone_in_chunk_size(self):
        result = fig03_large_chunking.run(num_writes=8000)
        mail = result.data["mail"]
        sizes = sorted(mail)
        assert all(mail[a] <= mail[b] for a, b in zip(sizes, sizes[1:]))
        assert mail[32768] > 5.0  # order-of-magnitude RMW penalty
        assert result.data["webvm"][32768] < mail[32768]


class TestFig04:
    def test_baseline_exceeds_socket_dram(self):
        result = fig04_membw.run(SMOKE_SCALE)
        write_demand = result.data["projections"]["Write-only"]
        assert write_demand > 170e9  # the paper's wall
        assert write_demand > result.data["projections"]["Mixed read/write"]


class TestFig05:
    def test_baseline_needs_more_than_a_socket(self):
        result = fig05_cpu.run(SMOKE_SCALE)
        write = result.data["Write-only"]
        assert write["cores"] > 22
        assert write["mgmt"] > 0.7  # management dominates
        assert write["mgmt"] > result.data["Mixed read/write"]["mgmt"]


class TestTab01:
    def test_capacity_light_paths_dominate(self):
        result = tab01_membw_breakdown.run(SMOKE_SCALE)
        write = result.data["write"]
        hot = (
            write["NIC <-> host memory"]
            + write["host memory (unique prediction)"]
            + write["host memory <-> FPGAs"]
        )
        assert hot > 0.5
        assert write["host memory <-> data SSD"] < 0.1


class TestTab02:
    def test_small_structures_dominate_caching_cpu(self):
        result = tab02_cpu_breakdown.run(SMOKE_SCALE)
        breakdown = result.data["breakdown"]
        tree = breakdown["table cache tree indexing"]
        ssd = breakdown["table SSD access"]
        content = breakdown["table cache content access"]
        assert tree + ssd > 5 * content


class TestTab03:
    def test_hit_rates_ordered(self):
        tab03_workloads.run(SMOKE_SCALE)
        hits = {
            key: get_report("fidr", key, SMOKE_SCALE).cache_stats.hit_rate
            for key in ("write-h", "write-m", "write-l")
        }
        assert hits["write-h"] > hits["write-m"] > hits["write-l"]

    def test_dedup_close_to_targets(self):
        from repro.workloads.generator import WORKLOADS

        for key in ("write-h", "write-m", "write-l"):
            report = get_report("fidr", key, SMOKE_SCALE)
            assert report.reduction.dedup_ratio == pytest.approx(
                WORKLOADS[key].dedup_target, abs=0.05
            )


class TestFig11:
    def test_fidr_cuts_memory_everywhere(self):
        result = fig11_membw.run(SMOKE_SCALE)
        reductions = result.data["reductions"]
        assert all(value > 0.4 for value in reductions.values())
        assert reductions["read-mixed"] == max(reductions.values())


class TestFig12:
    def test_fidr_cuts_cpu_everywhere(self):
        result = fig12_cpu.run(SMOKE_SCALE)
        reductions = result.data["reductions"]
        assert all(value > 0.2 for value in reductions.values())
        # Mixed benefits least: the data-SSD read stack stays on the CPU.
        assert reductions["read-mixed"] == min(reductions.values())


class TestFig13:
    def test_window_scaling_and_dram_cap(self):
        result = fig13_tree.run(SMOKE_SCALE)
        write_m = result.data["write-m"]["series"]
        assert write_m[4] > 1.5 * write_m[1]
        write_h = result.data["write-h"]["series"]
        assert write_h[4] < 135e9  # board-DRAM ceiling


class TestFig14:
    def test_staged_speedups(self):
        result = fig14_throughput.run(SMOKE_SCALE)
        speedups = result.data["speedups"]
        for key in ("write-h", "write-m"):
            stages = speedups[key]
            assert stages["+NIC hash & P2P"] > 1.2
            assert stages["+multi-update tree"] > stages["+HW cache (single-update)"]
            assert stages["+multi-update tree"] > 2.0
        # Single-update tree dips below software caching on low-hit work.
        write_l = speedups["write-l"]
        assert write_l["+HW cache (single-update)"] < write_l["+NIC hash & P2P"]
        # Read-Mixed gains nothing from the tree optimization (CPU-bound).
        mixed = speedups["read-mixed"]
        assert mixed["+multi-update tree"] == pytest.approx(
            mixed["+HW cache (single-update)"], rel=0.01
        )


class TestLatency:
    def test_fidr_reads_faster(self):
        result = latency.run()
        assert result.data["fidr_us"] < result.data["baseline_us"]
        assert result.data["baseline_us"] == pytest.approx(700, rel=0.05)
        assert result.data["fidr_us"] == pytest.approx(490, rel=0.05)


class TestTab04:
    def test_mixed_cheaper_than_write_only(self):
        result = tab04_nic_resources.run()
        assert result.data["mixed"].luts < result.data["write-only"].luts


class TestTab05:
    def test_table_ssd_is_the_small_config_bottleneck(self):
        result = tab05_cache_engine.run(SMOKE_SCALE)
        data = result.data
        assert data["All"]["throughput"] < data["Except SSD, medium tree"]["throughput"]
        large = data["Except SSD, large tree"]
        assert large["resources"].urams > 0
        assert large["geometry"].on_chip_levels == 13


class TestFig15:
    def test_savings_positive_and_shrinking(self):
        result = fig15_cost_scaling.run(SMOKE_SCALE)
        savings = result.data["savings"]
        assert savings[(500e12, 25e9)] > savings[(500e12, 75e9)] > 0.4
        # Larger capacity -> better savings at fixed throughput.
        assert savings[(500e12, 75e9)] > savings[(100e12, 75e9)]


class TestFig16:
    def test_fidr_cheapest_reduction_option(self):
        result = fig16_cost_breakdown.run(SMOKE_SCALE)
        totals = result.data["totals"]
        assert totals["FIDR"] < totals["baseline (partial)"] < totals["no reduction"]


class TestHarness:
    def test_all_experiments_registered(self):
        assert len(ALL_EXPERIMENTS) == 15

    def test_results_render_to_text(self):
        result = tab04_nic_resources.run()
        text = result.render()
        assert "Table 4" in text
        assert "paper" in text

"""Smoke tests for the beyond-paper studies and ablations."""

import pytest

from repro.experiments import (
    EXTENSION_EXPERIMENTS,
    SMOKE_SCALE,
    ablations,
    clear_report_cache,
    ext_cdc,
    ext_gc,
    ext_multitenant,
    ext_read_offload,
)


@pytest.fixture(scope="module", autouse=True)
def fresh_cache():
    clear_report_cache()
    yield
    clear_report_cache()


class TestReadOffload:
    def test_offload_beats_paper_fidr(self):
        result = ext_read_offload.run(SMOKE_SCALE)
        throughputs = result.data["throughputs"]
        assert (
            throughputs["FIDR + NVMe read offload"]
            > 1.2 * throughputs["FIDR (paper)"]
        )
        assert (
            throughputs["FIDR + offload + hot read cache"]
            >= throughputs["FIDR + NVMe read offload"]
        )


class TestMultitenant:
    def test_prioritized_protects_hot_tenant(self):
        result = ext_multitenant.run(num_ops=2500)
        plain, prioritized = result.data["plain"], result.data["prioritized"]
        assert prioritized["mail"] > plain["mail"] + 0.05
        # The scan tenant pays far less than the hot tenant gains.
        assert (plain["scan"] - prioritized["scan"]) < (
            prioritized["mail"] - plain["mail"]
        )


class TestCdc:
    def test_cdc_dedups_across_insertions(self):
        result = ext_cdc.run(num_versions=6, size=80_000)
        assert result.data["cdc"]["dedup"] > result.data["fixed"]["dedup"] + 0.2
        # And the cost side: CDC scanned every input byte.
        assert result.data["cdc"]["scanned"] > 0


class TestGc:
    def test_gc_tradeoff_is_monotone(self):
        result = ext_gc.run(num_writes=1500, address_space=60)
        series = result.data["series"]
        thresholds = sorted(series, reverse=True)  # 1.0 (no GC) .. 0.3
        dead = [series[t]["dead_fraction"] for t in thresholds]
        amp = [series[t]["write_amp"] for t in thresholds]
        assert dead == sorted(dead, reverse=True)  # less dead space ...
        assert amp == sorted(amp)  # ... costs more flash writes
        assert series[1.0]["gc_runs"] == 0


class TestAblations:
    def test_cache_size_sweep_monotone(self):
        result = ablations.cache_size_sweep(SMOKE_SCALE)
        series = result.data["series"]
        sizes = sorted(series)
        hits = [series[size]["hit"] for size in sizes]
        assert hits == sorted(hits)
        amps = [series[size]["amp"] for size in sizes]
        assert amps == sorted(amps, reverse=True)

    def test_eviction_batching_cheap(self):
        result = ablations.eviction_batch_sweep(SMOKE_SCALE)
        series = result.data["series"]
        assert series[1]["hit"] - series[32]["hit"] < 0.03

    def test_compressibility_multiplies_reduction(self):
        result = ablations.compressibility_sweep(SMOKE_SCALE)
        series = result.data["series"]
        assert series[0.25] > series[0.5] > series[1.0] > 1.0

    def test_batch_size_insensitive(self):
        result = ablations.batch_size_sweep(SMOKE_SCALE)
        series = result.data["series"]
        values = list(series.values())
        assert max(values) < 0.15  # root-complex traffic stays tiny
        assert max(values) - min(values) < 0.02


class TestRegistry:
    def test_extensions_registered(self):
        assert set(EXTENSION_EXPERIMENTS) >= {
            "ext-read-offload", "ext-multitenant", "ext-cdc",
            "ext-pipeline-des", "ext-gc", "ablations",
        }


class TestSensitivity:
    def test_speedup_robust_to_calibration(self):
        from repro.experiments import ext_sensitivity

        result = ext_sensitivity.run(SMOKE_SCALE)
        speedups = result.data["speedups"]
        assert max(speedups.values()) / min(speedups.values()) < 1.5
        assert all(value > 2.0 for value in speedups.values())

    def test_scaled_costs(self):
        from repro.experiments.ext_sensitivity import scaled_costs

        doubled = scaled_costs(2.0)
        from repro.systems.config import CpuCosts

        assert doubled.predictor_per_chunk == 2 * CpuCosts().predictor_per_chunk
        with pytest.raises(ValueError):
            scaled_costs(0)

"""Test package."""

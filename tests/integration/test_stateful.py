"""Hypothesis stateful (model-based) tests for the core stores.

Each machine drives a component with random operation sequences while
maintaining a plain-dict model; invariants are checked continuously.
These are the strongest correctness guarantees in the suite — any
sequence of operations Hypothesis can construct must keep the component
equivalent to its model.
"""

import random

from hypothesis import settings
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule
from hypothesis import strategies as st

from repro.cache.btree import BPlusTree
from repro.cache.table_cache import TableCache
from repro.datared.compression import ModeledCompressor
from repro.datared.dedup import DedupEngine
from repro.datared.hash_pbn import HashPbnTable, InMemoryBucketStore
from repro.datared.hashing import fingerprint

KEYS = st.integers(0, 120)


class BTreeMachine(RuleBasedStateMachine):
    """B+-tree ≡ dict under arbitrary insert/delete/search sequences."""

    def __init__(self):
        super().__init__()
        self.tree = BPlusTree(order=3)  # minimal order: most rebalancing
        self.model = {}

    @rule(key=KEYS, value=st.integers())
    def insert(self, key, value):
        self.tree.insert(key, value)
        self.model[key] = value

    @rule(key=KEYS)
    def delete(self, key):
        assert self.tree.delete(key) == (key in self.model)
        self.model.pop(key, None)

    @rule(key=KEYS)
    def search(self, key):
        assert self.tree.search(key) == self.model.get(key)

    @invariant()
    def structurally_sound(self):
        self.tree.check_invariants()
        assert len(self.tree) == len(self.model)


class TableCacheMachine(RuleBasedStateMachine):
    """Cached Hash-PBN table ≡ dict, under churn far beyond capacity."""

    def __init__(self):
        super().__init__()
        self.cache = TableCache(
            InMemoryBucketStore(), capacity_lines=4, eviction_batch=2
        )
        self.table = HashPbnTable(16, store=self.cache)
        self.model = {}

    def _digest(self, key):
        return fingerprint(str(key).encode())

    @rule(key=KEYS)
    def insert(self, key):
        if key not in self.model:
            self.table.insert(self._digest(key), key)
            self.model[key] = key

    @rule(key=KEYS)
    def remove(self, key):
        assert self.table.remove(self._digest(key)) == (key in self.model)
        self.model.pop(key, None)

    @rule(key=KEYS)
    def lookup(self, key):
        assert self.table.lookup(self._digest(key)) == self.model.get(key)

    @rule()
    def flush(self):
        self.cache.flush_all()

    @invariant()
    def cache_consistent(self):
        self.cache.check_invariants()


class DedupEngineMachine(RuleBasedStateMachine):
    """The dedup engine ≡ a plain block device, plus space invariants."""

    LBAS = st.integers(0, 20)
    CONTENT = st.integers(0, 8)

    def __init__(self):
        super().__init__()
        self.engine = DedupEngine(
            num_buckets=256, compressor=ModeledCompressor(0.5)
        )
        self.model = {}
        base = random.Random(1234)
        self.pool = [base.randbytes(4096) for _ in range(9)]

    @rule(lba=LBAS, content=CONTENT)
    def write(self, lba, content):
        data = self.pool[content]
        self.engine.write(lba, data)
        self.model[lba] = data

    @rule(lba=LBAS)
    def read(self, lba):
        expected = self.model.get(lba, b"\x00" * 4096)
        assert self.engine.read(lba, 1).data == expected

    @rule()
    def flush(self):
        self.engine.flush()

    @rule()
    def collect(self):
        self.engine.collect_garbage(threshold=0.3)
        for lba, expected in self.model.items():
            assert self.engine.read(lba, 1).data == expected

    @invariant()
    def space_accounting_consistent(self):
        stats = self.engine.stats
        assert stats.live_stored_bytes >= 0
        assert stats.live_stored_bytes == self.engine.containers.live_bytes
        # Live uniques never exceed distinct contents in the pool.
        assert len(self.engine.pbn_map) <= len(self.pool)
        # Every mapped LBA has a live PBN record.
        for lba, pbn in self.engine.lba_map.items():
            assert pbn in self.engine.pbn_map


TestBTreeStateful = BTreeMachine.TestCase
TestBTreeStateful.settings = settings(
    max_examples=25, stateful_step_count=60, deadline=None
)

TestTableCacheStateful = TableCacheMachine.TestCase
TestTableCacheStateful.settings = settings(
    max_examples=20, stateful_step_count=50, deadline=None
)

TestDedupEngineStateful = DedupEngineMachine.TestCase
TestDedupEngineStateful.settings = settings(
    max_examples=15, stateful_step_count=40, deadline=None
)

"""Every example script must run cleanly — they are deliverables."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).resolve().parents[2] / "examples").glob("*.py")
)


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(script):
    completed = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert completed.returncode == 0, completed.stderr[-2000:]
    assert completed.stdout.strip(), "examples must narrate their results"


def test_expected_example_set():
    names = {path.stem for path in EXAMPLES}
    assert {
        "quickstart",
        "mail_server_consolidation",
        "capacity_planning",
        "tree_concurrency_study",
        "durable_protocol_server",
    } <= names

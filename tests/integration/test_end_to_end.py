"""Cross-subsystem integration tests."""

import random

import pytest

from repro.datared.compression import ModeledCompressor, ZlibCompressor
from repro.systems.baseline import BaselineSystem
from repro.systems.fidr import FidrSystem
from repro.systems.server import StorageServer, SystemKind
from repro.workloads.content import ContentFactory
from repro.workloads.generator import WORKLOADS, build_workload
from repro.workloads.runner import replay

CHUNK = 4096


class TestCrossSystemDataEquivalence:
    """Both architectures are the same logical storage system."""

    def test_identical_state_after_identical_workload(self):
        trace = build_workload(WORKLOADS["write-l"], num_chunks=2000, replicas=2)
        factory = ContentFactory()
        base = BaselineSystem(num_buckets=2048, cache_lines=128,
                              compressor=ModeledCompressor(0.5))
        fidr = FidrSystem(num_buckets=2048, cache_lines=128,
                          compressor=ModeledCompressor(0.5))
        replay(base, trace, factory)
        replay(fidr, trace, factory)

        assert base.engine.stats.dedup_ratio == fidr.engine.stats.dedup_ratio
        assert base.engine.stats.stored_bytes == fidr.engine.stats.stored_bytes
        # And they serve identical reads.
        rng = random.Random(1)
        lbas = [request.lba for request in trace.requests]
        for lba in rng.sample(lbas, 50):
            assert base.read(lba, 1) == fidr.read(lba, 1)

    def test_cache_behaviour_identical(self):
        trace = build_workload(WORKLOADS["write-m"], num_chunks=2000, replicas=2)
        stats = []
        for cls in (BaselineSystem, FidrSystem):
            system = cls(num_buckets=2048, cache_lines=128,
                         compressor=ModeledCompressor(0.5))
            replay(system, trace)
            stats.append((system.table_cache.stats.hits,
                          system.table_cache.stats.misses))
        assert stats[0] == stats[1]


class TestRealCompressionEndToEnd:
    def test_fidr_with_zlib_over_generated_content(self):
        factory = ContentFactory(compress_fraction=0.5)
        server = StorageServer.build(
            SystemKind.FIDR, num_buckets=2048, cache_lines=128,
            compressor=ZlibCompressor(),
        )
        written = {}
        for lba in range(0, 400, 2):
            content_id = lba % 60  # heavy duplication
            server.write(lba, factory.chunk(content_id))
            written[lba] = content_id
        server.flush()
        for lba, content_id in written.items():
            assert server.read(lba, 1) == factory.chunk(content_id)
        stats = server.reduction_stats
        assert stats.dedup_ratio > 0.5
        assert 0.4 < stats.compression_ratio < 0.65


class TestMultiChunkRequests:
    @pytest.mark.parametrize("kind", [SystemKind.BASELINE, SystemKind.FIDR])
    def test_large_writes_and_reads(self, kind, rng):
        server = StorageServer.build(kind, num_buckets=2048, cache_lines=128,
                                     compressor=ModeledCompressor(0.5))
        payload = rng.randbytes(16 * CHUNK)
        server.write(0, payload)
        server.flush()
        assert server.read(0, 16) == payload

    @pytest.mark.parametrize("kind", [SystemKind.BASELINE, SystemKind.FIDR])
    def test_overlapping_rewrites(self, kind, rng):
        server = StorageServer.build(kind, num_buckets=2048, cache_lines=128,
                                     compressor=ModeledCompressor(0.5))
        first = rng.randbytes(8 * CHUNK)
        server.write(0, first)
        patch = rng.randbytes(2 * CHUNK)
        server.write(2, patch)
        server.flush()
        expected = first[: 2 * CHUNK] + patch + first[4 * CHUNK :]
        assert server.read(0, 8) == expected


class TestGarbageAccumulation:
    def test_overwrites_free_space(self, rng):
        server = StorageServer.build(
            SystemKind.FIDR, num_buckets=2048, cache_lines=128,
            compressor=ModeledCompressor(0.5),
        )
        for _ in range(3):
            for lba in range(0, 80, 8):
                server.write(lba, rng.randbytes(CHUNK))
        server.flush()
        stats = server.reduction_stats
        assert stats.reclaimed_stored_bytes > 0
        assert stats.live_stored_bytes < stats.stored_bytes
        # Live footprint matches the container layer's view.
        assert (
            server.system.engine.containers.live_bytes
            == stats.live_stored_bytes
        )


class TestScaleStability:
    def test_per_byte_metrics_stable_across_scale(self):
        """The experiments project from small replays; the per-byte
        ratios they use must not drift materially with workload size."""
        amps = []
        for chunks in (4000, 8000):
            system = FidrSystem(num_buckets=1 << 14, cache_lines=512,
                                compressor=ModeledCompressor(0.5))
            trace = build_workload(
                WORKLOADS["write-h"], num_chunks=chunks, replicas=2, seed=1
            )
            result = replay(system, trace)
            amps.append(result.report.memory_amplification())
        assert amps[0] == pytest.approx(amps[1], rel=0.12)

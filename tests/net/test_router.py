"""Wire tests for the scatter-gather shard router.

A :class:`~repro.net.router.ShardRouter` in front of N single-shard
:class:`~repro.net.aserver.AsyncProtocolServer`\\ s must present as one
block device: bytes round-trip across shard boundaries, overwrites
retire the stale shard's mapping, global dedup still collapses
identical content (it always routes to the same shard), STATS
aggregates every backend's snapshot into one ``repro.stats/v1``
document, v1 peers get structured ``UNSUPPORTED_OP``, and a dead
backend surfaces as a typed :class:`~repro.errors.ShardError` naming
the shard while the healthy shards' ledgers stay conserved.

No pytest-asyncio in the environment: each test wraps an async body in
``asyncio.run``.  Backends bind the *global* metrics registry at engine
construction, so the cluster helper installs a private registry around
each build (the same dance ``repro.net route --spawn`` does in-process).
"""

import asyncio
import contextlib
import json
from types import SimpleNamespace

import pytest

from repro.datared.compression import ModeledCompressor
from repro.errors import (
    ErrorCode,
    ShardError,
    decode_error_payload,
    error_code_for,
)
from repro.net.aserver import AsyncProtocolClient, AsyncProtocolServer
from repro.net.protocol import FrameDecoder, Op, encode_frame
from repro.net.router import ShardRouter
from repro.obs import STATS_SCHEMA
from repro.obs.metrics import MetricsRegistry, set_registry
from repro.systems.server import StorageServer, SystemKind

CHUNK = 4096


@pytest.fixture(autouse=True)
def _fresh_registry():
    """Isolate every test's metrics in its own default registry."""
    previous = set_registry(MetricsRegistry())
    try:
        yield
    finally:
        set_registry(previous)


def run(coro):
    return asyncio.run(coro)


@contextlib.asynccontextmanager
async def cluster(num_shards):
    """``num_shards`` single-shard backends behind one router.

    Each backend gets a private registry installed *during* its build
    (engines bind the global registry at construction), restored after.
    """
    servers = []
    storages = []
    registries = []
    router = None
    previous = set_registry(MetricsRegistry())
    set_registry(previous)
    try:
        for _ in range(num_shards):
            registry = MetricsRegistry()
            set_registry(registry)
            try:
                storage = StorageServer.build(
                    SystemKind.FIDR, num_buckets=1024, cache_lines=64,
                    compressor=ModeledCompressor(0.5),
                )
            finally:
                set_registry(previous)
            server = AsyncProtocolServer(storage, registry=registry)
            await server.start()
            servers.append(server)
            storages.append(storage)
            registries.append(registry)
        router = ShardRouter(
            [(server.host, server.port) for server in servers],
            registry=MetricsRegistry(),
        )
        await router.start()
        yield SimpleNamespace(
            router=router,
            servers=servers,
            storages=storages,
            registries=registries,
        )
    finally:
        if router is not None:
            await router.stop()
        for server in servers:
            await server.stop()


def payload_for_shard(rng, router, target):
    """Random chunk whose digest routes to shard ``target``."""
    from repro.datared.sharded import shard_for_digest

    while True:
        data = rng.randbytes(CHUNK)
        digest = router._fingerprinter.digest(data)
        if shard_for_digest(digest, router.num_shards) == target:
            return data


class TestRouterOfOne:
    """One backend: the router is pure indirection."""

    def test_write_read_trim_roundtrip(self, rng):
        async def body():
            async with cluster(1) as nodes:
                router = nodes.router
                async with await AsyncProtocolClient.connect(
                    router.host, router.port
                ) as client:
                    data = rng.randbytes(3 * CHUNK)
                    await client.write(0, data)
                    assert await client.read(0, 3) == data
                    # Never-written LBAs zero-fill locally.
                    assert await client.read(64, 2) == bytes(2 * CHUNK)
                    await client.trim(0, num_chunks=1)
                    got = await client.read(0, 3)
                    assert got == bytes(CHUNK) + data[CHUNK:]

        run(body())

    def test_unaligned_requests_rejected_with_typed_errors(self, rng):
        from repro.errors import AlignmentError, ProtocolError

        async def body():
            async with cluster(1) as nodes:
                router = nodes.router
                async with await AsyncProtocolClient.connect(
                    router.host, router.port
                ) as client:
                    with pytest.raises(ProtocolError):
                        await client.write(0, b"")
                    with pytest.raises(AlignmentError):
                        await client.write(0, b"x" * (CHUNK + 1))

        run(body())


class TestCrossShard:
    def test_multi_chunk_payload_spans_backends(self, rng):
        async def body():
            async with cluster(4) as nodes:
                router = nodes.router
                async with await AsyncProtocolClient.connect(
                    router.host, router.port
                ) as client:
                    # One chunk aimed at each shard: the single WRITE
                    # frame must scatter to all four backends.
                    chunks = [
                        payload_for_shard(rng, router, shard)
                        for shard in range(4)
                    ]
                    await client.write(0, b"".join(chunks))
                    assert await client.read(0, 4) == b"".join(chunks)
                for storage in nodes.storages:
                    storage.flush()
                per_shard = [
                    storage.reduction_stats.unique_chunks
                    for storage in nodes.storages
                ]
                assert per_shard == [1, 1, 1, 1]

        run(body())

    def test_global_dedup_collapses_across_the_cluster(self, rng):
        async def body():
            async with cluster(4) as nodes:
                router = nodes.router
                data = rng.randbytes(CHUNK)
                async with await AsyncProtocolClient.connect(
                    router.host, router.port
                ) as client:
                    for index in range(8):
                        await client.write(
                            index * router.blocks_per_chunk, data
                        )
                for storage in nodes.storages:
                    storage.flush()
                uniques = sum(
                    storage.reduction_stats.unique_chunks
                    for storage in nodes.storages
                )
                duplicates = sum(
                    storage.reduction_stats.duplicate_chunks
                    for storage in nodes.storages
                )
                # Identical content always routes to the same shard, so
                # cluster-wide dedup degrades to single-node dedup.
                assert uniques == 1
                assert duplicates == 7
                owners = [
                    storage
                    for storage in nodes.storages
                    if storage.reduction_stats.unique_chunks
                ]
                assert len(owners) == 1

        run(body())

    def test_overwrite_moves_mapping_and_trims_stale_shard(self, rng):
        async def body():
            async with cluster(2) as nodes:
                router = nodes.router
                first = payload_for_shard(rng, router, 0)
                second = payload_for_shard(rng, router, 1)
                async with await AsyncProtocolClient.connect(
                    router.host, router.port
                ) as client:
                    await client.write(0, first)
                    assert router._directory[0] == 0
                    await client.write(0, second)
                    assert router._directory[0] == 1
                    assert await client.read(0, 1) == second
                for storage in nodes.storages:
                    storage.flush()
                # The stale mapping on shard 0 was TRIMmed away: no LBA
                # still points at the old content.
                assert len(nodes.storages[0].system.engine.lba_map) == 0
                assert len(nodes.storages[1].system.engine.lba_map) == 1

        run(body())

    def test_trim_fans_out_and_clears_directory(self, rng):
        async def body():
            async with cluster(4) as nodes:
                router = nodes.router
                chunks = [
                    payload_for_shard(rng, router, shard)
                    for shard in range(4)
                ]
                async with await AsyncProtocolClient.connect(
                    router.host, router.port
                ) as client:
                    await client.write(0, b"".join(chunks))
                    await client.trim(0, num_chunks=4)
                    assert router._directory == {}
                    assert await client.read(0, 4) == bytes(4 * CHUNK)

        run(body())


class TestClusterStats:
    def test_stats_aggregates_backends_and_stamps_cluster(self, rng):
        async def body():
            async with cluster(2) as nodes:
                router = nodes.router
                chunks = [
                    payload_for_shard(rng, router, shard)
                    for shard in range(2)
                ]
                async with await AsyncProtocolClient.connect(
                    router.host, router.port
                ) as client:
                    await client.write(0, b"".join(chunks))
                    for storage in nodes.storages:
                        storage.flush()
                    snapshot = await client.stats()
                assert snapshot["schema"] == STATS_SCHEMA
                assert snapshot["cluster"]["shards"] == 2
                assert snapshot["cluster"]["backends"] == [
                    [server.host, server.port] for server in nodes.servers
                ]
                gauges = snapshot["gauges"]
                # Summed bases from both backends...
                assert gauges["engine.logical_bytes"] == 2 * CHUNK
                assert gauges["engine.unique_chunks"] == 2
                # ...and ratios recomputed from the sums, not summed.
                assert 0.0 <= gauges["engine.dedup_ratio"] <= 1.0
                assert gauges["router.shards"] == 2
                # Counters sum across every constituent snapshot.
                expected_frames = sum(
                    registry.counter("proto.frames_v2_total").value
                    for registry in nodes.registries
                ) + router.registry.counter("proto.frames_v2_total").value
                counters = snapshot["counters"]
                assert counters["proto.frames_v2_total"] == expected_frames

        run(body())

    def test_histograms_merge_bucketwise(self, rng):
        async def body():
            async with cluster(2) as nodes:
                router = nodes.router
                # Seed the same histogram in both backend registries
                # with disjoint observations; the scrape must merge them
                # bucket-wise (counts element-wise, min/max across all).
                nodes.registries[0].histogram("stage.lookup_ns").observe(
                    5_000
                )
                nodes.registries[1].histogram("stage.lookup_ns").observe(
                    700_000
                )
                nodes.registries[1].histogram("stage.lookup_ns").observe(
                    900_000
                )
                async with await AsyncProtocolClient.connect(
                    router.host, router.port
                ) as client:
                    snapshot = await client.stats()
                merged = snapshot["histograms"]["stage.lookup_ns"]
                assert merged["count"] == 3
                assert merged["sum"] == 5_000 + 700_000 + 900_000
                assert merged["min"] == 5_000
                assert merged["max"] == 900_000
                assert sum(merged["counts"]) == 3

        run(body())

    def test_v1_stats_and_trim_get_structured_unsupported_op(self, rng):
        async def body():
            async with cluster(2) as nodes:
                router = nodes.router
                reader, writer = await asyncio.open_connection(
                    router.host, router.port
                )
                decoder = FrameDecoder()
                try:
                    for op in (Op.STATS, Op.TRIM):
                        writer.write(encode_frame(op, 0))
                        await writer.drain()
                        frames = []
                        while not frames:
                            frames = decoder.feed(await reader.read(65536))
                        (frame,) = frames
                        assert frame.version == 1
                        assert frame.op == Op.ERROR
                        code, detail = decode_error_payload(frame.payload)
                        assert code == ErrorCode.UNSUPPORTED_OP
                        assert "v2" in detail
                    # The v1 session survives: WRITE/READ still work.
                    data = rng.randbytes(CHUNK)
                    writer.write(encode_frame(Op.WRITE, 0, data))
                    await writer.drain()
                    frames = []
                    while not frames:
                        frames = decoder.feed(await reader.read(65536))
                    assert frames[0].op == Op.WRITE_ACK
                finally:
                    writer.close()
                    with contextlib.suppress(Exception):
                        await writer.wait_closed()

        run(body())


class TestShardFaults:
    def test_dead_backend_surfaces_typed_shard_error(self, rng):
        async def body():
            async with cluster(2) as nodes:
                router = nodes.router
                doomed = payload_for_shard(rng, router, 1)
                healthy = payload_for_shard(rng, router, 0)
                async with await AsyncProtocolClient.connect(
                    router.host, router.port
                ) as client:
                    await client.write(0, healthy)
                    # Kill shard 1's server, then aim a write at it.
                    await nodes.servers[1].stop()
                    with pytest.raises(ShardError) as excinfo:
                        await client.write(
                            router.blocks_per_chunk, doomed
                        )
                    assert "shard 1" in str(excinfo.value)
                    assert (
                        error_code_for(excinfo.value)
                        == ErrorCode.SHARD_FAILED
                    )
                    # Shard 0 is untouched and keeps serving.
                    assert await client.read(0, 1) == healthy
                nodes.storages[0].flush()
                assert (
                    nodes.storages[0].reduction_stats.logical_bytes == CHUNK
                )

        run(body())

    def test_partial_failure_keeps_healthy_runs_applied(self, rng):
        async def body():
            async with cluster(2) as nodes:
                router = nodes.router
                good = payload_for_shard(rng, router, 0)
                bad = payload_for_shard(rng, router, 1)
                async with await AsyncProtocolClient.connect(
                    router.host, router.port
                ) as client:
                    await nodes.servers[1].stop()
                    # One frame spanning both shards: run atomicity
                    # means shard 0's chunk lands and stays readable
                    # even though the frame as a whole errors.
                    with pytest.raises(ShardError):
                        await client.write(0, good + bad)
                    assert router._directory.get(0) == 0
                    assert (
                        router._directory.get(router.blocks_per_chunk)
                        is None
                    )
                    assert await client.read(0, 1) == good

        run(body())

"""Regression tests for backend-executor offload in the asyncio server.

The contract under test: storage work runs off the event loop on the
single backend thread, and large writes are split into bounded
sub-writes, so a slow multi-megabyte write cannot park every queued
small request behind it.  Small-read latency during a concurrent slow
large write must stay near one sub-write's cost — not the whole write's.
"""

import asyncio
import os
import time

import pytest

from repro.datared.compression import Compressor, ModeledCompressor
from repro.net.aserver import AsyncProtocolClient, AsyncProtocolServer
from repro.systems.server import StorageServer, SystemKind

CHUNK = 4096


class SlowCompressor(Compressor):
    """ModeledCompressor plus a fixed per-chunk stall — a deterministic
    stand-in for an expensive compression stage."""

    def __init__(self, delay_s: float):
        self.delay_s = delay_s
        self.inner = ModeledCompressor(0.5)

    def compress(self, data: bytes):
        time.sleep(self.delay_s)
        return self.inner.compress(data)

    def decompress(self, chunk) -> bytes:
        return self.inner.decompress(chunk)


def build_storage(delay_s: float) -> StorageServer:
    from repro.systems.config import SystemConfig

    # batch_chunks matches the server's write_split_chunks below, so one
    # sub-write triggers exactly one backend batch — the preemption
    # granularity the latency bound is about.
    return StorageServer.build(
        SystemKind.FIDR, num_buckets=1024, cache_lines=64,
        compressor=SlowCompressor(delay_s),
        config=SystemConfig(batch_chunks=8),
    )


def run(coro):
    return asyncio.run(coro)


def test_small_read_p99_bounded_during_large_write():
    """One client streams a 128-chunk write whose compression stalls
    2 ms/chunk (~256 ms total); another client issues small reads the
    whole time.  With offload + write splitting, every read slots in
    between sub-writes, so read p99 stays an order of magnitude below
    the large write's duration."""
    storage = build_storage(delay_s=0.002)

    async def body():
        async with AsyncProtocolServer(
            storage, workers=2, offload=True, write_split_chunks=8
        ) as server:
            async with await AsyncProtocolClient.connect(
                server.host, server.port
            ) as writer, await AsyncProtocolClient.connect(
                server.host, server.port
            ) as reader:
                # Seed the region the small reads will hit (fast lane:
                # LBAs far from the large write's range).
                seed = bytes(range(256)) * (CHUNK // 256)
                await writer.write(0, seed)

                # Distinct chunk contents — duplicates would dedup away
                # and never reach the slow compressor.
                big = os.urandom(128 * CHUNK)
                write_started = time.perf_counter()
                write_task = asyncio.create_task(writer.write(1 << 20, big))

                latencies = []
                while not write_task.done():
                    start = time.perf_counter()
                    data = await reader.read(0, 1)
                    latencies.append(time.perf_counter() - start)
                    assert data == seed
                write_elapsed = time.perf_counter() - write_started
                await write_task
                return latencies, write_elapsed, server.metrics

    latencies, write_elapsed, metrics = run(body())

    assert metrics.writes_split >= 1
    assert metrics.backend_offloaded > 0
    # The reads really did overlap the slow write...
    assert len(latencies) >= 5
    # ...and none of them waited anywhere near the full write duration.
    ordered = sorted(latencies)
    p99 = ordered[min(len(ordered) - 1, int(0.99 * len(ordered)))]
    assert write_elapsed > 0.2
    assert p99 < write_elapsed / 4, (
        f"small-read p99 {p99 * 1e3:.1f} ms not bounded against "
        f"{write_elapsed * 1e3:.1f} ms large write"
    )


def test_offload_disabled_still_correct():
    """``offload=False`` keeps the old inline dispatch path working
    (correctness only — no latency bound without the backend thread)."""
    storage = StorageServer.build(
        SystemKind.FIDR, num_buckets=256, cache_lines=32,
        compressor=ModeledCompressor(0.5),
    )

    async def body():
        async with AsyncProtocolServer(storage, offload=False) as server:
            assert server.metrics.backend_offloaded == 0
            async with await AsyncProtocolClient.connect(
                server.host, server.port
            ) as client:
                payload = b"\x5a" * (4 * CHUNK)
                await client.write(0, payload)
                assert await client.read(0, 4) == payload
            assert server.metrics.backend_offloaded == 0

    run(body())


def test_split_write_surfaces_same_typed_error_as_unsplit():
    """A misaligned LBA fails identically whether or not the write is
    large enough to take the split path — and without applying any
    sub-write first."""
    from repro.systems.config import SystemConfig

    # 2-block chunks make odd LBAs misaligned (with 1-block chunks every
    # LBA is trivially aligned and the error path is unreachable).
    storage = StorageServer.build(
        SystemKind.FIDR, num_buckets=256, cache_lines=32,
        compressor=ModeledCompressor(0.5),
        config=SystemConfig(chunk_size=2 * CHUNK),
    )
    big = b"x" * (8 * storage.chunk_size)

    async def body():
        async with AsyncProtocolServer(
            storage, write_split_chunks=2
        ) as server:
            async with await AsyncProtocolClient.connect(
                server.host, server.port
            ) as client:
                with pytest.raises(Exception) as unsplit_error:
                    await client.write(1, b"x" * storage.chunk_size)
                with pytest.raises(Exception) as split_error:
                    await client.write(1, big)
                assert type(split_error.value) is type(unsplit_error.value)
                assert server.metrics.writes_split >= 1
                # Nothing was applied by the failed split write...
                assert await client.read(0, 1) == bytes(storage.chunk_size)
                # ...and the server still serves.
                await client.write(0, big)
                assert await client.read(0, 8) == big

    run(body())

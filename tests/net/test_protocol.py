"""Tests for the §6.2 storage protocol."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.datared.compression import ModeledCompressor
from repro.net.protocol import (
    Frame,
    FrameDecoder,
    Op,
    ProtocolClient,
    ProtocolError,
    ProtocolServer,
    encode_frame,
)
from repro.systems.server import StorageServer, SystemKind

CHUNK = 4096


def make_stack(kind=SystemKind.FIDR):
    storage = StorageServer.build(
        kind, num_buckets=1024, cache_lines=64,
        compressor=ModeledCompressor(0.5),
    )
    endpoint = ProtocolServer(storage)
    client = ProtocolClient(endpoint.handle_bytes)
    return storage, endpoint, client


class TestFraming:
    def test_roundtrip(self):
        raw = encode_frame(Op.WRITE, 42, b"payload", flags=3)
        frames = FrameDecoder().feed(raw)
        assert frames == [Frame(op=Op.WRITE, lba=42, payload=b"payload", flags=3)]

    def test_split_delivery(self):
        raw = encode_frame(Op.READ, 7)
        decoder = FrameDecoder()
        assert decoder.feed(raw[:5]) == []
        assert decoder.feed(raw[5:10]) == []
        frames = decoder.feed(raw[10:])
        assert frames[0].op == Op.READ

    def test_coalesced_delivery(self):
        raw = encode_frame(Op.READ, 1) + encode_frame(Op.READ, 2)
        frames = FrameDecoder().feed(raw)
        assert [frame.lba for frame in frames] == [1, 2]

    def test_crc_detects_corruption(self):
        raw = bytearray(encode_frame(Op.WRITE, 0, b"data"))
        raw[-1] ^= 0xFF
        with pytest.raises(ProtocolError):
            FrameDecoder().feed(bytes(raw))

    def test_bad_magic_rejected(self):
        raw = b"\x00" + encode_frame(Op.READ, 0)[1:]
        with pytest.raises(ProtocolError):
            FrameDecoder().feed(raw)

    def test_encode_validation(self):
        with pytest.raises(ProtocolError):
            encode_frame(99, 0)
        with pytest.raises(ProtocolError):
            encode_frame(Op.READ, -1)

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(
            st.tuples(st.integers(0, 1000), st.binary(max_size=200)),
            min_size=1, max_size=10,
        ),
        st.integers(1, 17),
    )
    def test_arbitrary_stream_chunking(self, messages, step):
        """Frames survive any transport-level re-segmentation."""
        stream = b"".join(
            encode_frame(Op.WRITE, lba, payload or b"x")
            for lba, payload in messages
        )
        decoder = FrameDecoder()
        decoded = []
        for start in range(0, len(stream), step):
            decoded.extend(decoder.feed(stream[start : start + step]))
        assert len(decoded) == len(messages)
        assert [frame.lba for frame in decoded] == [m[0] for m in messages]


class TestEndToEnd:
    @pytest.mark.parametrize("kind", [SystemKind.BASELINE, SystemKind.FIDR])
    def test_write_read_through_protocol(self, kind, rng):
        _, _, client = make_stack(kind)
        data = rng.randbytes(CHUNK)
        client.write(0, data)
        assert client.read(0, 1) == data

    def test_multi_chunk_read(self, rng):
        _, _, client = make_stack()
        payload = rng.randbytes(4 * CHUNK)
        client.write(0, payload)
        assert client.read(0, 4) == payload

    def test_write_ack_is_immediate(self, rng):
        storage, endpoint, client = make_stack()
        client.write(0, rng.randbytes(CHUNK))
        # The backend has not flushed (batching), yet the ack arrived.
        assert storage.system.engine.containers.sealed_count == 0

    def test_empty_write_errors(self):
        _, _, client = make_stack()
        with pytest.raises(ProtocolError):
            client.write(0, b"")

    def test_requests_counted(self, rng):
        _, endpoint, client = make_stack()
        client.write(0, rng.randbytes(CHUNK))
        client.read(0, 1)
        assert endpoint.requests_served == 2

    def test_many_clients_one_server(self, rng):
        storage, endpoint, _ = make_stack()
        clients = [ProtocolClient(endpoint.handle_bytes) for _ in range(3)]
        data = [rng.randbytes(CHUNK) for _ in range(3)]
        for index, client in enumerate(clients):
            client.write(index * 8, data[index])
        for index, client in enumerate(clients):
            assert client.read(index * 8, 1) == data[index]

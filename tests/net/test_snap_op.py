"""Tests for the SNAP/SNAP_ACK v2 wire op: CoW snapshot management.

Covers the JSON action dispatch (create/delete/list/read), the v1
rejection path, typed snapshot errors crossing the wire, and the async
client's coroutine variants over a real socket.
"""

import asyncio

import pytest

from repro.datared.compression import ModeledCompressor
from repro.errors import ErrorCode, ProtocolError, decode_error_payload
from repro.net.aserver import AsyncProtocolClient, AsyncProtocolServer
from repro.net.protocol import (
    FrameDecoder,
    Op,
    ProtocolClient,
    ProtocolServer,
    encode_frame,
)
from repro.systems.server import StorageServer, SystemKind

CHUNK = 4096


def make_stack(version=2):
    storage = StorageServer.build(
        SystemKind.FIDR, num_buckets=1024, cache_lines=64,
        compressor=ModeledCompressor(0.5),
    )
    endpoint = ProtocolServer(storage)
    client = ProtocolClient(endpoint.handle_bytes, version=version)
    return storage, endpoint, client


class TestSnapActions:
    def test_create_list_delete_roundtrip(self, rng):
        _storage, _endpoint, client = make_stack()
        client.write(0, rng.randbytes(CHUNK))
        client.write(1, rng.randbytes(CHUNK))
        pinned = client.create_snapshot("alpha")
        assert pinned == 2
        assert client.snapshots() == ["alpha"]
        reclaimed = client.delete_snapshot("alpha")
        assert reclaimed >= 0
        assert client.snapshots() == []

    def test_snapshot_read_is_pinned_against_overwrites(self, rng):
        _storage, _endpoint, client = make_stack()
        old = rng.randbytes(CHUNK)
        client.write(0, old)
        client.create_snapshot("pin")
        client.write(0, rng.randbytes(CHUNK))
        assert client.read_snapshot("pin", 0) == old
        assert client.read(0) != old

    def test_duplicate_create_is_typed_bad_request(self, rng):
        _storage, _endpoint, client = make_stack()
        client.write(0, rng.randbytes(CHUNK))
        client.create_snapshot("once")
        with pytest.raises(Exception) as excinfo:
            client.create_snapshot("once")
        assert "once" in str(excinfo.value)

    def test_delete_unknown_is_error(self):
        _storage, _endpoint, client = make_stack()
        with pytest.raises(Exception):
            client.delete_snapshot("ghost")

    def test_malformed_payload_is_protocol_error(self):
        _storage, endpoint, _client = make_stack()
        raw = endpoint.handle_bytes(
            ProtocolClient(endpoint.handle_bytes)._encode_request(
                Op.SNAP, 0, b"\xff\xfe not json"
            )
        )
        (frame,) = FrameDecoder().feed(raw)
        assert frame.op == Op.ERROR
        code, _message = decode_error_payload(frame.payload)
        assert code == ErrorCode.BAD_REQUEST

    def test_unknown_action_is_protocol_error(self):
        _storage, endpoint, _client = make_stack()
        raw = endpoint.handle_bytes(
            ProtocolClient(endpoint.handle_bytes)._encode_request(
                Op.SNAP, 0, b'{"action":"clone","name":"x"}'
            )
        )
        (frame,) = FrameDecoder().feed(raw)
        assert frame.op == Op.ERROR
        code, message = decode_error_payload(frame.payload)
        assert code == ErrorCode.BAD_REQUEST
        assert "clone" in message


class TestVersionGate:
    def test_v1_client_refuses_locally(self):
        _storage, _endpoint, client = make_stack(version=1)
        with pytest.raises(ProtocolError, match="version 2"):
            client.create_snapshot("nope")

    def test_raw_v1_snap_frame_gets_unsupported_op(self):
        _storage, endpoint, _client = make_stack()
        raw = endpoint.handle_bytes(encode_frame(Op.SNAP, 0, b"{}"))
        (frame,) = FrameDecoder().feed(raw)
        assert frame.op == Op.ERROR
        code, message = decode_error_payload(frame.payload)
        assert code == ErrorCode.UNSUPPORTED_OP
        assert "v2" in message


class TestAsyncSnap:
    def test_async_snapshot_lifecycle(self, rng):
        storage = StorageServer.build(
            SystemKind.FIDR, num_buckets=1024, cache_lines=64,
            compressor=ModeledCompressor(0.5),
        )
        old = rng.randbytes(CHUNK)

        async def body():
            async with AsyncProtocolServer(storage) as server:
                async with await AsyncProtocolClient.connect(
                    server.host, server.port
                ) as client:
                    await client.write(0, old)
                    pinned = await client.create_snapshot("wire")
                    assert pinned == 1
                    await client.write(0, rng.randbytes(CHUNK))
                    assert await client.read_snapshot("wire", 0) == old
                    assert await client.snapshots() == ["wire"]
                    assert await client.delete_snapshot("wire") >= 0

        asyncio.run(body())

"""The protocol's STATS op end to end: v2 clients scrape the live
``repro.stats/v1`` snapshot, v1 clients get a well-formed typed error
(never a wedge), and the decoder/client protocol-event counters feed
the same registry the snapshot exports."""

import asyncio
import json

import pytest

from repro.datared.compression import ModeledCompressor
from repro.errors import ErrorCode, ProtocolError, decode_error_payload
from repro.net.aserver import AsyncProtocolClient, AsyncProtocolServer
from repro.net.protocol import (
    FrameDecoder,
    Op,
    ProtocolClient,
    ProtocolServer,
    encode_frame,
    encode_frame_v2,
)
from repro.obs import STATS_SCHEMA, trace
from repro.obs.metrics import MetricsRegistry, get_registry, set_registry
from repro.systems.server import StorageServer, SystemKind

CHUNK = 4096


@pytest.fixture(autouse=True)
def _fresh_registry():
    """Isolate every test's metrics in its own default registry."""
    previous = set_registry(MetricsRegistry())
    trace.set_enabled(False)
    trace.clear()
    try:
        yield
    finally:
        trace.set_enabled(False)
        trace.clear()
        set_registry(previous)


def make_stack(version=2):
    storage = StorageServer.build(
        SystemKind.FIDR, num_buckets=1024, cache_lines=64,
        compressor=ModeledCompressor(0.5),
    )
    endpoint = ProtocolServer(storage)
    client = ProtocolClient(endpoint.handle_bytes, version=version)
    return storage, endpoint, client


class TestSyncStats:
    def test_v2_client_scrapes_schema_and_engine_gauges(self):
        storage, _, client = make_stack()
        client.write(0, b"a" * CHUNK)
        client.write(4_096 // 512, b"a" * CHUNK)  # duplicate chunk
        storage.flush()  # drain the staged batch into the ledgers
        snapshot = client.stats()
        assert snapshot["schema"] == STATS_SCHEMA
        assert snapshot["tracing"] is False
        gauges = snapshot["gauges"]
        assert gauges["engine.logical_bytes"] == 2 * CHUNK
        assert gauges["engine.duplicate_chunks"] == 1
        assert 0.0 <= gauges["engine.dedup_ratio"] <= 1.0
        assert "proto.frames_v2_total" in snapshot["counters"]

    def test_payload_is_strict_json(self):
        _, endpoint, _ = make_stack()
        reply = endpoint.handle_frame(
            FrameDecoder().feed(encode_frame_v2(Op.STATS, 0))[0]
        )
        (frame,) = FrameDecoder().feed(reply)
        assert frame.op == Op.STATS_ACK
        decoded = json.loads(frame.payload.decode("utf-8"))
        assert decoded["schema"] == STATS_SCHEMA

    def test_v1_stats_request_gets_unsupported_op_error(self):
        _, endpoint, _ = make_stack()
        reply = endpoint.handle_frame(
            FrameDecoder().feed(encode_frame(Op.STATS, 0))[0]
        )
        (frame,) = FrameDecoder().feed(reply)
        assert frame.version == 1
        assert frame.op == Op.ERROR
        code, detail = decode_error_payload(frame.payload)
        assert code == ErrorCode.UNSUPPORTED_OP
        assert "v2" in detail

    def test_v1_session_survives_a_rejected_stats(self):
        # Old client pokes the new op, gets the error, keeps working.
        _, endpoint, client = make_stack(version=1)
        endpoint.handle_frame(
            FrameDecoder().feed(encode_frame(Op.STATS, 0))[0]
        )
        client.write(0, b"b" * CHUNK)
        assert client.read(0, 1) == b"b" * CHUNK

    def test_v1_client_stats_raises_locally(self):
        _, _, client = make_stack(version=1)
        with pytest.raises(ProtocolError):
            client.stats()

    def test_spans_ride_the_snapshot_when_tracing(self):
        storage, _, client = make_stack()
        with trace.enabled():
            client.write(0, b"c" * CHUNK)
            storage.flush()  # push the batch through the six stages
            snapshot = client.stats()
        assert snapshot["tracing"] is True
        names = {record["name"] for record in snapshot["spans"]}
        assert any(name.startswith("engine.stage.") for name in names)


class TestProtocolEventCounters:
    def test_corrupt_frame_increments_resync_total(self):
        registry = MetricsRegistry()
        decoder = FrameDecoder(registry)
        clean = encode_frame_v2(Op.WRITE, 0, b"x" * 64)
        events = decoder.events(b"\x00\x99" + clean)
        assert isinstance(events[0], ProtocolError)
        assert events[-1].op == Op.WRITE  # recovered after the resync
        assert registry.counter("proto.resync_total").value >= 1

    def test_version_mix_is_counted(self):
        registry = MetricsRegistry()
        decoder = FrameDecoder(registry)
        decoder.feed(encode_frame(Op.READ, 0, flags=1))
        decoder.feed(encode_frame_v2(Op.READ, 0, count=1))
        assert registry.counter("proto.frames_v1_total").value == 1
        assert registry.counter("proto.frames_v2_total").value == 1

    def test_server_counts_v1_downgrades(self):
        _, endpoint, client = make_stack(version=1)
        client.write(0, b"d" * CHUNK)
        downgrades = get_registry().counter("proto.v1_downgrades_total")
        assert downgrades.value == 1
        v2 = ProtocolClient(endpoint.handle_bytes, version=2)
        v2.read(0, 1)
        assert downgrades.value == 1  # v2 traffic does not count


class TestAsyncStats:
    def test_async_client_scrapes_a_live_server(self):
        storage = StorageServer.build(
            SystemKind.FIDR, num_buckets=1024, cache_lines=64,
            compressor=ModeledCompressor(0.5),
        )

        async def body():
            async with AsyncProtocolServer(storage) as server:
                async with await AsyncProtocolClient.connect(
                    server.host, server.port
                ) as client:
                    # A full 64-chunk batch processes inline (no flush
                    # op on the wire; batch_chunks drains it).
                    await client.write(0, b"e" * (64 * CHUNK))
                    return await client.stats()

        snapshot = asyncio.run(body())
        assert snapshot["schema"] == STATS_SCHEMA
        assert snapshot["gauges"]["engine.logical_bytes"] == 64 * CHUNK
        assert snapshot["gauges"]["server.responses_sent"] >= 1

    def test_v1_async_client_stats_raises_locally(self):
        storage = StorageServer.build(
            SystemKind.FIDR, num_buckets=1024, cache_lines=64,
            compressor=ModeledCompressor(0.5),
        )

        async def body():
            async with AsyncProtocolServer(storage) as server:
                async with await AsyncProtocolClient.connect(
                    server.host, server.port, version=1
                ) as client:
                    with pytest.raises(ProtocolError):
                        await client.stats()

        asyncio.run(body())

    def test_reader_death_is_counted(self):
        storage = StorageServer.build(
            SystemKind.FIDR, num_buckets=1024, cache_lines=64,
            compressor=ModeledCompressor(0.5),
        )
        registry = MetricsRegistry()

        async def body():
            server = AsyncProtocolServer(storage)
            await server.start()
            client = await AsyncProtocolClient.connect(
                server.host, server.port, registry=registry
            )
            try:
                await client.write(0, b"f" * CHUNK)
                await server.stop()  # yanks the transport under the reader
                deadline = asyncio.get_running_loop().time() + 2.0
                deaths = registry.counter(
                    "proto.client.reader_deaths_total"
                )
                while deaths.value == 0:
                    if asyncio.get_running_loop().time() > deadline:
                        raise AssertionError("reader death never counted")
                    await asyncio.sleep(0.005)
            finally:
                await client.close()

        asyncio.run(body())
        assert (
            registry.counter("proto.client.reader_deaths_total").value >= 1
        )

    def test_clean_close_is_not_a_death(self):
        storage = StorageServer.build(
            SystemKind.FIDR, num_buckets=1024, cache_lines=64,
            compressor=ModeledCompressor(0.5),
        )
        registry = MetricsRegistry()

        async def body():
            async with AsyncProtocolServer(storage) as server:
                async with await AsyncProtocolClient.connect(
                    server.host, server.port, registry=registry
                ) as client:
                    await client.write(0, b"g" * CHUNK)

        asyncio.run(body())
        assert (
            registry.counter("proto.client.reader_deaths_total").value == 0
        )

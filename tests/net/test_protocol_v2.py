"""Tests for the v2 wire format, decoder resync, and the typed error
model riding the protocol."""

import pytest

from repro.datared.compression import ModeledCompressor
from repro.errors import (
    AlignmentError,
    ErrorCode,
    ProtocolError,
    decode_error_payload,
)
from repro.net.protocol import (
    Frame,
    FrameDecoder,
    Op,
    ProtocolClient,
    ProtocolServer,
    encode_frame,
    encode_frame_v2,
    encode_reply,
)
from repro.systems.server import StorageServer, SystemKind

CHUNK = 4096


def make_stack(version=2, kind=SystemKind.FIDR, **kwargs):
    storage = StorageServer.build(
        kind, num_buckets=1024, cache_lines=64,
        compressor=ModeledCompressor(0.5), **kwargs,
    )
    endpoint = ProtocolServer(storage)
    client = ProtocolClient(endpoint.handle_bytes, version=version)
    return storage, endpoint, client


def make_wide_chunk_stack(version=2):
    """A 2-block chunk system, so odd LBAs violate alignment."""
    from repro.systems.config import SystemConfig
    return make_stack(version=version, config=SystemConfig(chunk_size=8192))


class TestV2Framing:
    def test_roundtrip_carries_request_id_and_count(self):
        raw = encode_frame_v2(Op.READ, 16, request_id=7_000_000, count=1000)
        (frame,) = FrameDecoder().feed(raw)
        assert frame.version == 2
        assert frame.request_id == 7_000_000
        assert frame.count == 1000
        assert frame.read_count == 1000

    def test_count_beyond_v1_flags_range(self):
        """The dedicated 32-bit count field breaks the 255-chunk cap."""
        raw = encode_frame_v2(Op.READ, 0, count=1 << 20)
        (frame,) = FrameDecoder().feed(raw)
        assert frame.read_count == 1 << 20

    def test_v1_frame_reports_count_via_flags(self):
        (frame,) = FrameDecoder().feed(encode_frame(Op.READ, 0, flags=9))
        assert frame.version == 1
        assert frame.count is None
        assert frame.read_count == 9

    def test_field_validation(self):
        with pytest.raises(ProtocolError):
            encode_frame_v2(Op.READ, 0, request_id=1 << 32)
        with pytest.raises(ProtocolError):
            encode_frame_v2(Op.READ, 0, count=-1)
        with pytest.raises(ProtocolError):
            encode_frame_v2(99, 0)

    def test_mixed_version_stream(self):
        """v1 and v2 frames interleaved on one stream both decode."""
        stream = (
            encode_frame(Op.WRITE, 0, b"old")
            + encode_frame_v2(Op.WRITE, 8, b"new", request_id=3)
            + encode_frame(Op.READ, 0, flags=2)
        )
        frames = FrameDecoder().feed(stream)
        assert [f.version for f in frames] == [1, 2, 1]
        assert frames[1].request_id == 3

    def test_v2_split_delivery(self):
        raw = encode_frame_v2(Op.WRITE, 8, b"payload", request_id=5)
        decoder = FrameDecoder()
        collected = []
        for index in range(0, len(raw), 3):
            collected.extend(decoder.feed(raw[index : index + 3]))
        assert len(collected) == 1
        assert collected[0].payload == b"payload"

    def test_encode_reply_mirrors_version(self):
        v1_request = FrameDecoder().feed(encode_frame(Op.READ, 0))[0]
        v2_request = FrameDecoder().feed(
            encode_frame_v2(Op.READ, 0, request_id=42)
        )[0]
        (v1_reply,) = FrameDecoder().feed(
            encode_reply(v1_request, Op.READ_ACK, 0, b"x")
        )
        (v2_reply,) = FrameDecoder().feed(
            encode_reply(v2_request, Op.READ_ACK, 0, b"x")
        )
        assert v1_reply.version == 1
        assert v2_reply.version == 2
        assert v2_reply.request_id == 42


class TestDecoderResync:
    def test_bad_magic_then_clean_frame_recovers(self):
        """One corrupt prefix must not wedge the decoder forever."""
        decoder = FrameDecoder()
        with pytest.raises(ProtocolError):
            decoder.feed(b"\x00\x01\x02garbage")
        frames = decoder.feed(encode_frame_v2(Op.READ, 8, request_id=1))
        assert len(frames) == 1 and frames[0].lba == 8

    def test_crc_corruption_consumes_the_frame(self):
        decoder = FrameDecoder()
        bad = bytearray(encode_frame(Op.WRITE, 0, b"data"))
        bad[-1] ^= 0xFF
        with pytest.raises(ProtocolError):
            decoder.feed(bytes(bad))
        assert decoder.pending_bytes == 0
        (frame,) = decoder.feed(encode_frame(Op.WRITE, 16, b"ok"))
        assert frame.payload == b"ok"

    def test_repeated_feed_does_not_rereraise(self):
        """The pre-v2 bug: bad magic left the buffer intact, so every
        later feed() re-raised without making progress."""
        decoder = FrameDecoder()
        with pytest.raises(ProtocolError):
            decoder.feed(b"\x00" * 40)
        assert decoder.feed(b"") == []  # buffer was reclaimed

    def test_resync_scans_to_embedded_magic(self):
        """Junk bytes before a clean frame: the resync scan finds the
        frame's magic and the frame decodes in the same call."""
        good = encode_frame(Op.READ, 3)
        events = FrameDecoder().events(b"\x07\x08" + good)
        assert isinstance(events[0], ProtocolError)
        assert isinstance(events[1], Frame) and events[1].lba == 3

    def test_events_reports_errors_inline(self):
        good = encode_frame_v2(Op.READ, 8, request_id=2)
        events = FrameDecoder().events(b"\xab" + good)
        assert isinstance(events[0], ProtocolError)
        assert isinstance(events[1], Frame) and events[1].lba == 8

    def test_implausible_length_is_corruption_not_a_stall(self):
        import struct
        header = struct.pack(
            ">BBBBQII", 0xF1, Op.WRITE, 0, 0, 0, 1 << 31, 0
        )
        decoder = FrameDecoder()
        with pytest.raises(ProtocolError):
            decoder.feed(header)
        (frame,) = decoder.feed(encode_frame(Op.READ, 0))
        assert frame.op == Op.READ


class TestServerErrorHandling:
    def test_corrupt_frame_answered_with_error_frame(self):
        _, endpoint, _ = make_stack()
        response = endpoint.handle_bytes(b"\x00\x01\x02")
        (frame,) = FrameDecoder().feed(response)
        assert frame.op == Op.ERROR
        code, _ = decode_error_payload(frame.payload)
        assert code is ErrorCode.CORRUPT_FRAME
        assert endpoint.frames_rejected == 1

    def test_corruption_then_valid_request_same_buffer(self):
        """A corrupt frame and a clean one in the same TCP segment: the
        server answers both (error frame + real ack)."""
        _, endpoint, _ = make_stack()
        data = b"\xab\xcd" + encode_frame_v2(
            Op.WRITE, 0, b"x" * CHUNK, request_id=1
        )
        frames = FrameDecoder().feed(endpoint.handle_bytes(data))
        assert [f.op for f in frames] == [Op.ERROR, Op.WRITE_ACK]

    def test_unaligned_read_returns_alignment_code(self):
        _, endpoint, _ = make_wide_chunk_stack()
        response = endpoint.handle_bytes(
            encode_frame_v2(Op.READ, 3, request_id=9, count=1)
        )
        (frame,) = FrameDecoder().feed(response)
        assert frame.op == Op.ERROR
        assert frame.request_id == 9  # error mirrors the request id
        code, message = decode_error_payload(frame.payload)
        assert code is ErrorCode.ALIGNMENT
        assert "chunk-aligned" in message

    def test_client_raises_typed_alignment_error(self):
        _, _, client = make_wide_chunk_stack()
        with pytest.raises(AlignmentError):
            client.read(3, 1)

    def test_client_raises_protocol_error_on_empty_write(self):
        _, _, client = make_stack()
        with pytest.raises(ProtocolError):
            client.write(0, b"")

    def test_ack_op_as_request_is_rejected_not_fatal(self):
        _, endpoint, _ = make_stack()
        response = endpoint.handle_bytes(encode_frame(Op.WRITE_ACK, 0))
        (frame,) = FrameDecoder().feed(response)
        assert frame.op == Op.ERROR
        code, _ = decode_error_payload(frame.payload)
        assert code is ErrorCode.BAD_REQUEST


class TestInterop:
    def test_v1_encode_frame_accepted_by_new_decoder(self):
        """Acceptance criterion: pre-v2 frames decode unchanged."""
        raw = encode_frame(Op.WRITE, 42, b"payload", flags=3)
        frames = FrameDecoder().feed(raw)
        assert frames == [
            Frame(op=Op.WRITE, lba=42, payload=b"payload", flags=3)
        ]

    @pytest.mark.parametrize("version", [1, 2])
    def test_roundtrip_both_versions(self, version, rng):
        _, endpoint, client = make_stack(version=version)
        data = rng.randbytes(CHUNK)
        client.write(0, data)
        assert client.read(0, 1) == data

    def test_server_answers_v1_request_in_v1(self, rng):
        _, endpoint, _ = make_stack()
        response = endpoint.handle_bytes(
            encode_frame(Op.WRITE, 0, rng.randbytes(CHUNK))
        )
        (frame,) = FrameDecoder().feed(response)
        assert frame.version == 1 and frame.op == Op.WRITE_ACK

    def test_server_answers_v2_request_in_v2(self, rng):
        _, endpoint, _ = make_stack()
        response = endpoint.handle_bytes(
            encode_frame_v2(Op.WRITE, 0, rng.randbytes(CHUNK), request_id=77)
        )
        (frame,) = FrameDecoder().feed(response)
        assert frame.version == 2 and frame.request_id == 77

    def test_v1_client_read_cap(self):
        _, _, client = make_stack(version=1)
        with pytest.raises(ProtocolError):
            client.read(0, 256)

    def test_v2_client_large_read(self, rng):
        _, _, client = make_stack(version=2)
        data = rng.randbytes(4 * CHUNK)
        client.write(0, data)
        assert client.read(0, 4) == data

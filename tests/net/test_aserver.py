"""Tests for the concurrent asyncio serving layer.

No pytest-asyncio in the environment: each test builds its own event
loop with ``asyncio.run`` around an async body.
"""

import asyncio

import pytest

from repro.datared.compression import ModeledCompressor
from repro.errors import AlignmentError, ProtocolError
from repro.net.aserver import AsyncProtocolClient, AsyncProtocolServer
from repro.net.protocol import Op, encode_frame_v2
from repro.systems.server import StorageServer, SystemKind

CHUNK = 4096


def build_storage(kind=SystemKind.FIDR):
    return StorageServer.build(
        kind, num_buckets=1024, cache_lines=64,
        compressor=ModeledCompressor(0.5),
    )


def run(coro):
    return asyncio.run(coro)


async def wait_until(predicate, timeout=2.0):
    """Poll until ``predicate()`` holds (handler teardown is async)."""
    deadline = asyncio.get_running_loop().time() + timeout
    while not predicate():
        if asyncio.get_running_loop().time() > deadline:
            raise AssertionError("condition never became true")
        await asyncio.sleep(0.005)


class TestLifecycle:
    def test_start_assigns_port_and_stop_flushes(self):
        storage = build_storage()

        async def body():
            async with AsyncProtocolServer(storage) as server:
                assert server.port != 0
                async with await AsyncProtocolClient.connect(
                    server.host, server.port
                ) as client:
                    await client.write(0, b"x" * CHUNK)
            # __aexit__ flushed the staged batch through the engine.
            assert storage.reduction_stats.logical_bytes == CHUNK

        run(body())

    def test_stop_closes_live_connections(self):
        storage = build_storage()

        async def body():
            server = AsyncProtocolServer(storage)
            await server.start()
            client = await AsyncProtocolClient.connect(
                server.host, server.port
            )
            try:
                await client.write(0, b"y" * CHUNK)
                await server.stop()
                await wait_until(
                    lambda: server.metrics.connections_open == 0
                )
            finally:
                await client.close()

        run(body())

    def test_constructor_validation(self):
        storage = build_storage()
        with pytest.raises(ValueError):
            AsyncProtocolServer(storage, queue_depth=0)
        with pytest.raises(ValueError):
            AsyncProtocolServer(storage, workers=0)


class TestSingleClient:
    def test_write_read_roundtrip(self, rng):
        storage = build_storage()

        async def body():
            async with AsyncProtocolServer(storage) as server:
                async with await AsyncProtocolClient.connect(
                    server.host, server.port
                ) as client:
                    data = rng.randbytes(2 * CHUNK)
                    await client.write(0, data)
                    assert await client.read(0, 2) == data

        run(body())

    def test_typed_errors_cross_the_socket(self):
        from repro.systems.config import SystemConfig
        storage = StorageServer.build(
            SystemKind.FIDR, num_buckets=1024, cache_lines=64,
            compressor=ModeledCompressor(0.5),
            config=SystemConfig(chunk_size=2 * CHUNK),
        )

        async def body():
            async with AsyncProtocolServer(storage) as server:
                async with await AsyncProtocolClient.connect(
                    server.host, server.port
                ) as client:
                    with pytest.raises(AlignmentError):
                        await client.read(3, 1)
                    with pytest.raises(ProtocolError):
                        await client.write(0, b"")

        run(body())

    def test_pipelined_out_of_order_completion(self, rng):
        """Many requests in flight on one connection, matched by id."""
        storage = build_storage()

        async def body():
            async with AsyncProtocolServer(storage, workers=4) as server:
                async with await AsyncProtocolClient.connect(
                    server.host, server.port
                ) as client:
                    payloads = {i * 8: rng.randbytes(CHUNK) for i in range(24)}
                    await asyncio.gather(*(
                        client.write(lba, data)
                        for lba, data in payloads.items()
                    ))
                    reads = await asyncio.gather(*(
                        client.read(lba, 1) for lba in payloads
                    ))
                    assert all(
                        data == payloads[lba]
                        for lba, data in zip(payloads, reads)
                    )

        run(body())

    def test_v1_client_against_async_server(self, rng):
        """A legacy peer (v1 frames, FIFO matching) is still served."""
        storage = build_storage()

        async def body():
            async with AsyncProtocolServer(storage) as server:
                async with await AsyncProtocolClient.connect(
                    server.host, server.port, version=1
                ) as client:
                    data = rng.randbytes(CHUNK)
                    await client.write(0, data)
                    assert await client.read(0, 1) == data

        run(body())

    def test_corrupt_bytes_answered_not_fatal(self, rng):
        """Garbage on the socket draws an error frame; the connection
        and the server survive and keep serving."""
        storage = build_storage()

        async def body():
            async with AsyncProtocolServer(storage) as server:
                reader, writer = await asyncio.open_connection(
                    server.host, server.port
                )
                writer.write(b"\x00\x01\x02\x03")
                await writer.drain()
                from repro.net.protocol import FrameDecoder
                decoder = FrameDecoder()
                frames = []
                while not frames:
                    frames = decoder.feed(await reader.read(65536))
                assert frames[0].op == Op.ERROR
                # Same connection still works after the garbage:
                writer.write(encode_frame_v2(
                    Op.WRITE, 0, rng.randbytes(CHUNK), request_id=1
                ))
                await writer.drain()
                frames = []
                while not frames:
                    frames = decoder.feed(await reader.read(65536))
                assert frames[0].op == Op.WRITE_ACK
                writer.close()
                await writer.wait_closed()

        run(body())


class TestConcurrentClients:
    def test_interleaved_writes_then_reads_verify(self, rng):
        """Acceptance shape: many clients, disjoint regions, byte-exact
        read-back through one shared backend."""
        storage = build_storage()
        num_clients = 10

        async def one_client(server, index):
            base = index * 64
            async with await AsyncProtocolClient.connect(
                server.host, server.port
            ) as client:
                payloads = {}
                for j in range(6):
                    lba = base + j * 8
                    payloads[lba] = rng.randbytes(CHUNK)
                    await client.write(lba, payloads[lba])
                    await asyncio.sleep(0)  # force interleaving
                for lba, data in payloads.items():
                    assert await client.read(lba, 1) == data

        async def body():
            async with AsyncProtocolServer(storage, workers=3) as server:
                await asyncio.gather(*(
                    one_client(server, i) for i in range(num_clients)
                ))
                assert server.metrics.connections_total == num_clients
                await wait_until(
                    lambda: server.metrics.connections_open == 0
                )
                assert server.endpoint.requests_served == num_clients * 12

        run(body())

    def test_backpressure_queue_never_exceeds_bound(self, rng):
        """Burst far more frames than the queue holds: the reader must
        pause (await on put) instead of overfilling the queue."""
        storage = build_storage()
        depth = 3
        burst = 40

        async def body():
            async with AsyncProtocolServer(
                storage, queue_depth=depth, workers=1
            ) as server:
                async with await AsyncProtocolClient.connect(
                    server.host, server.port
                ) as client:
                    await asyncio.gather(*(
                        client.write(i * 8, rng.randbytes(CHUNK))
                        for i in range(burst)
                    ))
                assert server.metrics.requests_enqueued == burst
                assert server.metrics.max_queue_depth <= depth
                # And the bound was actually stressed, not idled past:
                assert server.metrics.max_queue_depth == depth

        run(body())

    def test_metrics_accounting(self, rng):
        storage = build_storage()

        async def body():
            async with AsyncProtocolServer(storage) as server:
                async with await AsyncProtocolClient.connect(
                    server.host, server.port
                ) as client:
                    await client.write(0, rng.randbytes(CHUNK))
                    await client.read(0, 1)
                metrics = server.metrics
                assert metrics.responses_sent == 2
                assert metrics.bytes_in > 0 and metrics.bytes_out > 0

        run(body())


class TestClientEdgeCases:
    def test_pending_requests_fail_when_server_vanishes(self, rng):
        storage = build_storage()

        async def body():
            server = AsyncProtocolServer(storage)
            await server.start()
            client = await AsyncProtocolClient.connect(
                server.host, server.port
            )
            try:
                await client.write(0, rng.randbytes(CHUNK))
                await server.stop()
                with pytest.raises(ProtocolError):
                    await client.write(8, rng.randbytes(CHUNK))
            finally:
                await client.close()

        run(body())

    def test_closed_client_refuses_requests(self):
        storage = build_storage()

        async def body():
            async with AsyncProtocolServer(storage) as server:
                client = await AsyncProtocolClient.connect(
                    server.host, server.port
                )
                await client.close()
                with pytest.raises(ProtocolError):
                    await client.read(0, 1)

        run(body())

"""Test package."""

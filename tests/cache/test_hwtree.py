"""Tests for the speculative concurrent HW tree (Algorithms 1-2)."""

import random

import pytest

from repro.cache.btree import BPlusTree
from repro.cache.hwtree import SpeculativeTreeEngine, TreeOp


class TestTreeOp:
    def test_validation(self):
        with pytest.raises(ValueError):
            TreeOp("upsert", 1, 1)
        with pytest.raises(ValueError):
            TreeOp("insert", 1)  # missing value
        TreeOp("delete", 1)  # deletes need no value


class TestSequentialEquivalence:
    """The speculative engine must produce the same final tree as
    sequential application, for any window."""

    @pytest.mark.parametrize("window", [1, 2, 4, 8])
    def test_disjoint_key_inserts(self, window):
        rng = random.Random(window)
        keys = rng.sample(range(1_000_000), 3000)
        engine = SpeculativeTreeEngine(window=window)
        engine.execute([TreeOp("insert", key, key * 2) for key in keys])
        assert len(engine.tree) == len(keys)
        for key in keys[:200]:
            assert engine.search(key) == key * 2
        engine.tree.check_invariants()

    @pytest.mark.parametrize("window", [1, 4])
    def test_mixed_inserts_deletes(self, window):
        rng = random.Random(9)
        keys = rng.sample(range(100_000), 2000)
        engine = SpeculativeTreeEngine(window=window)
        engine.execute([TreeOp("insert", key, key) for key in keys])
        victims = keys[:1000]
        engine.execute([TreeOp("delete", key) for key in victims])
        for key in victims[:100]:
            assert engine.search(key) is None
        for key in keys[1000:1100]:
            assert engine.search(key) == key
        assert len(engine.tree) == 1000
        engine.tree.check_invariants()

    def test_results_report_applied_flag(self):
        # Results come back in *commit* order (crashed ops replay later),
        # so match them up by op identity.
        engine = SpeculativeTreeEngine(window=2)
        ops = [
            TreeOp("insert", 1, "x"),
            TreeOp("delete", 1),
            TreeOp("delete", 42),  # absent
        ]
        results = {id(r.op): r.applied for r in engine.execute(ops)}
        assert results[id(ops[0])] is True  # insert applied
        assert results[id(ops[1])] is True  # delete of present key
        assert results[id(ops[2])] is False  # delete of absent key

    def test_commit_order_preserved_for_same_key(self):
        # Same-key ops conflict at the leaf, so speculation serializes
        # them in order: insert then delete leaves the key absent.
        engine = SpeculativeTreeEngine(window=4)
        engine.execute(
            [TreeOp("insert", 7, "v")] + [TreeOp("insert", k, k) for k in range(100, 140)]
        )
        engine.execute(
            [TreeOp("delete", 7)] + [TreeOp("insert", 7, "again")]
        )
        assert engine.search(7) == "again"


class TestSpeculation:
    def test_single_window_never_crashes(self):
        rng = random.Random(2)
        engine = SpeculativeTreeEngine(window=1)
        engine.execute(
            [TreeOp("insert", k, k) for k in rng.sample(range(10_000), 2000)]
        )
        assert engine.crash_count == 0
        assert engine.crash_rate == 0.0

    def test_wide_window_crash_rate_is_low(self):
        """The paper's claim: with random keys and a deep tree,
        mis-speculation is rare (<0.1% in their workloads)."""
        rng = random.Random(3)
        engine = SpeculativeTreeEngine(window=4)
        keys = rng.sample(range(5_000_000), 20_000)
        engine.execute([TreeOp("insert", key, key) for key in keys])
        mix = [TreeOp("delete", key) for key in keys[:4000]]
        mix += [TreeOp("insert", key + 5_000_000, 1) for key in keys[:4000]]
        rng.shuffle(mix)
        engine.execute(mix)
        assert engine.crash_rate < 0.05
        engine.tree.check_invariants()

    def test_crashes_replay_to_completion(self):
        # Dense sequential keys maximize leaf sharing -> many conflicts,
        # but every op must still commit exactly once.
        engine = SpeculativeTreeEngine(window=4)
        ops = [TreeOp("insert", key, key) for key in range(500)]
        results = engine.execute(ops)
        assert len(results) == 500
        assert engine.commit_count == 500
        assert len(engine.tree) == 500

    def test_replay_counts_reported(self):
        engine = SpeculativeTreeEngine(window=4)
        results = engine.execute([TreeOp("insert", k, k) for k in range(300)])
        total_replays = sum(r.replays for r in results)
        assert total_replays == engine.crash_count

    def test_spec_set_drains(self):
        engine = SpeculativeTreeEngine(window=4)
        engine.execute([TreeOp("insert", k, k) for k in range(100)])
        assert not engine._spec_nodes  # all claims released at commit

    def test_window_validation(self):
        with pytest.raises(ValueError):
            SpeculativeTreeEngine(window=0)

    def test_searches_never_conflict(self):
        engine = SpeculativeTreeEngine(window=4)
        engine.execute([TreeOp("insert", k, k) for k in range(50)])
        crash_before = engine.crash_count
        for key in range(50):
            assert engine.search(key) == key
        assert engine.crash_count == crash_before

    def test_custom_tree_injected(self):
        tree = BPlusTree(order=3)
        engine = SpeculativeTreeEngine(tree=tree, window=2)
        engine.execute([TreeOp("insert", 1, 1)])
        assert tree.search(1) == 1

"""Tests for the tenant-aware prioritized LRU."""

import pytest

from repro.cache.policy import PartitionedLru
from repro.cache.table_cache import TableCache
from repro.datared.hash_pbn import InMemoryBucketStore


def make_policy(a=1.0, b=1.0):
    return PartitionedLru({"a": a, "b": b}, default_tenant="a")


class TestBasics:
    def test_weights_normalized(self):
        policy = PartitionedLru({"a": 3.0, "b": 1.0})
        assert policy.weights["a"] == pytest.approx(0.75)

    def test_validation(self):
        with pytest.raises(ValueError):
            PartitionedLru({})
        with pytest.raises(ValueError):
            PartitionedLru({"a": 0.0})
        with pytest.raises(KeyError):
            make_policy().set_active("ghost")

    def test_touch_attributes_to_active_tenant(self):
        policy = make_policy()
        policy.touch(1)
        policy.set_active("b")
        policy.touch(2)
        assert policy.tenant_of(1) == "a"
        assert policy.tenant_of(2) == "b"
        assert len(policy) == 2

    def test_retouch_reattributes(self):
        policy = make_policy()
        policy.touch(1)
        policy.set_active("b")
        policy.touch(1)
        assert policy.tenant_of(1) == "b"
        assert policy.tenant_size("a") == 0

    def test_remove(self):
        policy = make_policy()
        policy.touch(1)
        assert policy.remove(1)
        assert not policy.remove(1)
        assert 1 not in policy

    def test_pin_protects(self):
        policy = make_policy()
        policy.touch(1)
        policy.touch(2)
        policy.pin(1)
        assert policy.evict_batch(2) == [2]


class TestWeightedEviction:
    def test_over_share_tenant_evicted_first(self):
        policy = make_policy(a=3.0, b=1.0)  # a deserves 75%
        policy.set_active("a")
        for key in range(3):
            policy.touch(("a", key))
        policy.set_active("b")
        for key in range(3):
            policy.touch(("b", key))
        # b holds 50% but deserves 25%: victims come from b first.
        victims = policy.evict_batch(2)
        assert all(policy_key[0] == "b" for policy_key in victims)

    def test_equal_weights_balance(self):
        policy = make_policy()
        policy.set_active("a")
        for key in range(4):
            policy.touch(("a", key))
        policy.set_active("b")
        policy.touch(("b", 0))
        victims = policy.evict_batch(2)
        assert all(key[0] == "a" for key in victims)

    def test_eviction_counters(self):
        policy = make_policy(a=1.0, b=1.0)
        policy.set_active("b")
        for key in range(4):
            policy.touch(key)
        policy.evict_batch(3)
        assert policy.evictions_by_tenant["b"] == 3

    def test_lru_within_tenant(self):
        policy = make_policy()
        for key in (1, 2, 3):
            policy.touch(key)
        policy.touch(1)  # promote
        assert policy.evict_batch(1) == [2]

    def test_empty_eviction(self):
        assert make_policy().evict_batch(5) == []
        assert make_policy().coldest() is None

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            make_policy().evict_batch(-1)


class TestWithTableCache:
    def test_drop_in_replacement(self):
        policy = PartitionedLru({"a": 2.0, "b": 1.0})
        cache = TableCache(
            InMemoryBucketStore(), capacity_lines=8, lru=policy,
            eviction_batch=2,
        )
        policy.set_active("a")
        for bucket in range(6):
            cache.read_bucket(bucket)
        policy.set_active("b")
        for bucket in range(100, 110):
            cache.read_bucket(bucket)
        cache.check_invariants()
        # Tenant a's protected share keeps some of its lines resident
        # despite b's scan.
        assert policy.tenant_size("a") > 0

    def test_scan_tenant_cannot_flush_protected_tenant(self):
        policy = PartitionedLru({"hot": 3.0, "scan": 1.0})
        cache = TableCache(
            InMemoryBucketStore(), capacity_lines=16, lru=policy,
            eviction_batch=1,
        )
        policy.set_active("hot")
        hot_buckets = list(range(8))
        for bucket in hot_buckets:
            cache.read_bucket(bucket)
        policy.set_active("scan")
        for bucket in range(1000, 1200):
            cache.read_bucket(bucket)
        # Re-read the hot set under its own tenancy: mostly still cached.
        policy.set_active("hot")
        hits_before = cache.stats.hits
        for bucket in hot_buckets:
            cache.read_bucket(bucket)
        assert cache.stats.hits - hits_before >= 6

"""Tests for the circular-buffer free list."""

import pytest

from repro.cache.freelist import CircularFreeList


class TestBasics:
    def test_fifo_order(self):
        free_list = CircularFreeList(4)
        for slot in (3, 1, 2):
            free_list.push(slot)
        assert [free_list.pop() for _ in range(3)] == [3, 1, 2]

    def test_full_boot_state(self):
        free_list = CircularFreeList.full(5)
        assert len(free_list) == 5
        assert free_list.is_full
        assert [free_list.pop() for _ in range(5)] == list(range(5))

    def test_empty_pop_rejected(self):
        with pytest.raises(IndexError):
            CircularFreeList(2).pop()

    def test_overfill_rejected(self):
        free_list = CircularFreeList(1)
        free_list.push(0)
        with pytest.raises(OverflowError):
            free_list.push(1)

    def test_negative_slot_rejected(self):
        with pytest.raises(ValueError):
            CircularFreeList(2).push(-1)

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            CircularFreeList(0)

    def test_wraparound(self):
        free_list = CircularFreeList(3)
        for round_number in range(5):
            for slot in range(3):
                free_list.push(slot + round_number * 10)
            popped = [free_list.pop() for _ in range(3)]
            assert popped == [slot + round_number * 10 for slot in range(3)]
        assert free_list.is_empty


class TestDdrAccounting:
    def test_bursts_amortize_sixteen_pops(self):
        free_list = CircularFreeList.full(64)
        for _ in range(16):
            free_list.pop()
        assert free_list.ddr_bursts == 1
        free_list.pop()
        assert free_list.ddr_bursts == 2

    def test_partial_burst_counts_once(self):
        free_list = CircularFreeList.full(8)
        for _ in range(3):
            free_list.pop()
        assert free_list.ddr_bursts == 1

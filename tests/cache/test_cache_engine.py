"""Tests for the Cache HW-Engine timing model (Figure 13)."""

import pytest

from repro.cache.cache_engine import CacheEngineConfig, CacheEngineModel


class TestAnalytic:
    def test_window_scaling_until_commit_binds(self):
        model = CacheEngineModel()
        t1 = model.analytic_throughput(0.19, window=1).throughput
        t2 = model.analytic_throughput(0.19, window=2).throughput
        t4 = model.analytic_throughput(0.19, window=4).throughput
        assert t1 < t2 <= t4
        # Near-linear 1 -> 2 (latency-bound), sublinear 2 -> 4 (commit port).
        assert t2 / t1 == pytest.approx(2.0, rel=0.05)
        assert t4 / t2 < 2.0

    def test_high_hit_rate_saturates_board_dram(self):
        model = CacheEngineModel()
        result = model.analytic_throughput(0.10, window=4)
        assert result.bottleneck == "board_dram"

    def test_zero_miss_rate_has_no_update_cap(self):
        result = CacheEngineModel().analytic_throughput(0.0, window=1)
        assert "update_path" not in result.caps
        assert result.bottleneck in ("board_dram", "search_pipeline")

    def test_table_ssd_cap(self):
        config = CacheEngineConfig(table_ssd_read_bw=2e9)
        result = CacheEngineModel(config).analytic_throughput(0.19, window=4)
        assert result.caps["table_ssd"] == pytest.approx(2e9 / 0.19)
        assert result.bottleneck == "table_ssd"

    def test_miss_rate_validation(self):
        model = CacheEngineModel()
        with pytest.raises(ValueError):
            model.analytic_throughput(1.5)
        with pytest.raises(ValueError):
            model.analytic_throughput(0.5, window=0)

    def test_paper_figure13_anchor_points(self):
        """Write-M-like (19% miss): ~27 GB/s single, ~64-67 GB/s multi;
        Write-H-like (10% miss): ~51 single, DRAM-capped ~128 multi."""
        model = CacheEngineModel()
        wm1 = model.analytic_throughput(0.19, 1).throughput / 1e9
        wm4 = model.analytic_throughput(0.19, 4).throughput / 1e9
        wh1 = model.analytic_throughput(0.10, 1).throughput / 1e9
        wh4 = model.analytic_throughput(0.10, 4).throughput / 1e9
        assert wm1 == pytest.approx(27.1, rel=0.05)
        assert wm4 == pytest.approx(63.8, rel=0.10)
        assert wh1 == pytest.approx(54.0, rel=0.07)
        assert wh4 == pytest.approx(127.0, rel=0.05)


class TestSimulation:
    def test_sim_tracks_analytic(self):
        # The queueing sim sits a little below the ideal closed form
        # (DRAM serialization adds latency the analytic caps ignore),
        # especially at the DRAM-bound point.
        model = CacheEngineModel()
        for miss, window in ((0.19, 1), (0.19, 4), (0.10, 4)):
            analytic = model.analytic_throughput(miss, window).throughput
            simulated = model.simulate(
                20_000, miss, window=window, seed=1
            ).throughput_bytes_per_s
            assert simulated <= analytic * 1.02
            assert simulated == pytest.approx(analytic, rel=0.20)

    def test_crash_rate_low_with_many_leaves(self):
        result = CacheEngineModel().simulate(
            20_000, 0.19, window=4, num_leaves=100_000, seed=2
        )
        assert result.crash_rate < 0.001  # the paper's <0.1% claim

    def test_crash_rate_rises_with_few_leaves(self):
        model = CacheEngineModel()
        sparse = model.simulate(10_000, 0.19, window=4, num_leaves=100_000, seed=3)
        dense = model.simulate(10_000, 0.19, window=4, num_leaves=50, seed=3)
        assert dense.crash_rate > sparse.crash_rate

    def test_single_window_never_crashes(self):
        result = CacheEngineModel().simulate(5_000, 0.3, window=1, seed=4)
        assert result.crashes == 0

    def test_updates_counted(self):
        result = CacheEngineModel().simulate(10_000, 0.2, window=2, seed=5)
        # ~2 updates per miss on ~20% of requests.
        assert result.updates == pytest.approx(4000, rel=0.15)

    def test_validation(self):
        model = CacheEngineModel()
        with pytest.raises(ValueError):
            model.simulate(0, 0.1)
        with pytest.raises(ValueError):
            CacheEngineModel(
                CacheEngineConfig(updates_per_miss=1.5)
            ).simulate(10, 0.1)

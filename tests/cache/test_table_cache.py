"""Tests for the table cache (write-back LRU over table SSDs)."""

import pytest

from repro.cache.table_cache import BTreeIndex, HwTreeIndex, TableCache
from repro.datared.hash_pbn import Bucket, HashPbnTable, InMemoryBucketStore
from repro.datared.hashing import fingerprint


def page_with(value: int) -> bytes:
    bucket = Bucket()
    bucket.insert(fingerprint(str(value).encode()), value)
    return bucket.to_bytes()


def make_cache(lines=4, index=None, batch=2):
    backing = InMemoryBucketStore()
    cache = TableCache(backing, capacity_lines=lines, index=index,
                       eviction_batch=batch)
    return backing, cache


class TestHitMiss:
    def test_first_read_misses_then_hits(self):
        _, cache = make_cache()
        cache.read_bucket(1)
        assert cache.stats.misses == 1
        # A different bucket in between defeats the warm-access memo.
        cache.read_bucket(2)
        cache.read_bucket(1)
        assert cache.stats.hits == 1
        assert cache.stats.fetches == 2

    def test_warm_reaccess_is_free(self):
        _, cache = make_cache()
        cache.read_bucket(1)
        scans_before = cache.stats.content_scans
        bytes_before = cache.stats.host_bytes_read
        cache.read_bucket(1)  # same bucket, back to back
        assert cache.stats.warm_hits == 1
        assert cache.stats.content_scans == scans_before
        assert cache.stats.host_bytes_read == bytes_before

    def test_hit_rate_counts_warm_reads(self):
        _, cache = make_cache()
        cache.read_bucket(1)  # miss
        cache.read_bucket(1)  # warm
        assert cache.stats.accesses == 2
        assert cache.stats.hit_rate == pytest.approx(0.5)


class TestWriteBack:
    def test_write_through_read(self):
        backing, cache = make_cache()
        page = page_with(7)
        cache.write_bucket(3, page)
        assert cache.read_bucket(3) == page

    def test_dirty_flushes_on_eviction(self):
        backing, cache = make_cache(lines=2, batch=1)
        cache.write_bucket(1, page_with(1))
        cache.write_bucket(2, page_with(2))
        assert backing.writes == 0  # write-back: nothing flushed yet
        cache.write_bucket(3, page_with(3))  # evicts bucket 1
        assert backing.writes == 1
        assert cache.stats.flushes == 1
        assert Bucket.from_bytes(backing.read_bucket(1)).entries

    def test_clean_eviction_skips_flush(self):
        backing, cache = make_cache(lines=2, batch=1)
        cache.read_bucket(1)
        cache.read_bucket(2)
        cache.read_bucket(3)  # evicts 1, which is clean
        assert cache.stats.flushes == 0
        assert cache.stats.evictions == 1

    def test_flush_all(self):
        backing, cache = make_cache()
        cache.write_bucket(1, page_with(1))
        cache.write_bucket(2, page_with(2))
        assert cache.flush_all() == 2
        assert backing.writes == 2
        assert cache.flush_all() == 0  # now clean

    def test_in_place_write_charges_a_cache_line(self):
        _, cache = make_cache()
        cache.read_bucket(1)
        written_before = cache.stats.host_bytes_written
        cache.write_bucket(1, page_with(9))  # warm in-place update
        delta = cache.stats.host_bytes_written - written_before
        assert delta == TableCache.IN_PLACE_WRITE_BYTES

    def test_page_size_enforced(self):
        _, cache = make_cache()
        with pytest.raises(ValueError):
            cache.write_bucket(0, b"small")


class TestEviction:
    def test_lru_victim_selection(self):
        _, cache = make_cache(lines=2, batch=1)
        cache.read_bucket(1)
        cache.read_bucket(2)
        cache.read_bucket(1)  # 2 is now coldest
        cache.read_bucket(3)
        assert cache.index.search(2) is None
        assert cache.index.search(1) is not None

    def test_batched_eviction(self):
        _, cache = make_cache(lines=4, batch=4)
        for bucket in range(1, 5):
            cache.read_bucket(bucket)
        cache.read_bucket(5)
        assert cache.stats.evictions == 4
        assert cache.resident_lines == 1  # all 4 evicted, #5 installed

    def test_invariants_hold_through_churn(self):
        _, cache = make_cache(lines=8, batch=2)
        for step in range(200):
            bucket = (step * 7) % 40
            if step % 3:
                cache.read_bucket(bucket)
            else:
                cache.write_bucket(bucket, page_with(bucket))
        cache.check_invariants()

    def test_validation(self):
        backing = InMemoryBucketStore()
        with pytest.raises(ValueError):
            TableCache(backing, capacity_lines=0)
        with pytest.raises(ValueError):
            TableCache(backing, capacity_lines=2, eviction_batch=3)


class TestIndexes:
    def test_btree_index_counts_visits(self):
        index = BTreeIndex()
        _, cache = make_cache(lines=4, index=index)
        for bucket in range(4):
            cache.read_bucket(bucket)
        assert index.searches >= 4
        assert index.node_visits > 0

    def test_hwtree_index_behaves_identically(self):
        results = []
        for index in (BTreeIndex(), HwTreeIndex(window=4)):
            _, cache = make_cache(lines=4, index=index, batch=2)
            trace = [(step * 5) % 23 for step in range(150)]
            for bucket in trace:
                cache.read_bucket(bucket)
            results.append((cache.stats.hits, cache.stats.misses,
                            cache.stats.evictions))
            cache.check_invariants()
        assert results[0] == results[1]


class TestWithHashPbnTable:
    def test_cached_table_is_transparent(self):
        backing, cache = make_cache(lines=8, batch=2)
        table = HashPbnTable(64, store=cache)
        digests = [fingerprint(str(i).encode()) for i in range(300)]
        for position, digest in enumerate(digests):
            assert table.lookup(digest) is None
            table.insert(digest, position)
        cache.flush_all()
        for position, digest in enumerate(digests):
            assert table.lookup(digest) == position
        cache.check_invariants()

    def test_dirty_data_survives_eviction_pressure(self):
        backing, cache = make_cache(lines=2, batch=1)
        table = HashPbnTable(32, store=cache)
        digests = [fingerprint(str(i).encode()) for i in range(100)]
        for position, digest in enumerate(digests):
            table.insert(digest, position)
        # Plenty of evictions happened; every entry must still resolve.
        assert cache.stats.evictions > 0
        for position, digest in enumerate(digests):
            assert table.lookup(digest) == position

"""Tests for the software B+-tree (the baseline's cache index)."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.cache.btree import BPlusTree


class TestBasics:
    def test_empty_search(self):
        assert BPlusTree().search(5) is None
        assert 5 not in BPlusTree()

    def test_insert_search(self):
        tree = BPlusTree(order=4)
        tree.insert(1, "a")
        tree.insert(2, "b")
        assert tree.search(1) == "a"
        assert tree.search(2) == "b"
        assert len(tree) == 2

    def test_overwrite_updates_value(self):
        tree = BPlusTree()
        tree.insert(1, "old")
        tree.insert(1, "new")
        assert tree.search(1) == "new"
        assert len(tree) == 1

    def test_none_value_rejected(self):
        with pytest.raises(ValueError):
            BPlusTree().insert(1, None)

    def test_order_validation(self):
        with pytest.raises(ValueError):
            BPlusTree(order=2)

    def test_delete(self):
        tree = BPlusTree(order=4)
        for key in range(10):
            tree.insert(key, key)
        assert tree.delete(5)
        assert tree.search(5) is None
        assert not tree.delete(5)
        assert len(tree) == 9

    def test_items_sorted(self):
        tree = BPlusTree(order=4)
        for key in (5, 1, 9, 3, 7):
            tree.insert(key, key * 10)
        assert list(tree.items()) == [(1, 10), (3, 30), (5, 50), (7, 70), (9, 90)]


class TestStructure:
    def test_height_grows_with_splits(self):
        tree = BPlusTree(order=3)
        assert tree.height == 1
        for key in range(50):
            tree.insert(key, key)
        assert tree.height >= 3
        tree.check_invariants()

    def test_height_shrinks_after_deletes(self):
        tree = BPlusTree(order=3)
        for key in range(50):
            tree.insert(key, key)
        tall = tree.height
        for key in range(50):
            tree.delete(key)
        assert tree.height < tall
        assert len(tree) == 0
        tree.check_invariants()

    def test_node_visits_accumulate(self):
        tree = BPlusTree(order=4)
        for key in range(100):
            tree.insert(key, key)
        before = tree.node_visits
        tree.search(50)
        assert tree.node_visits - before == tree.height

    def test_sequential_insert_invariants(self):
        tree = BPlusTree(order=4)
        for key in range(200):
            tree.insert(key, key)
        tree.check_invariants()

    def test_reverse_insert_invariants(self):
        tree = BPlusTree(order=4)
        for key in reversed(range(200)):
            tree.insert(key, key)
        tree.check_invariants()


class TestRandomizedVsDict:
    @pytest.mark.parametrize("order", [3, 4, 16])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_random_ops_match_dict(self, order, seed):
        rng = random.Random(seed)
        tree = BPlusTree(order=order)
        model = {}
        for step in range(2500):
            key = rng.randrange(300)
            action = rng.random()
            if action < 0.55:
                tree.insert(key, key * 2)
                model[key] = key * 2
            elif action < 0.9:
                assert tree.delete(key) == (key in model)
                model.pop(key, None)
            else:
                assert tree.search(key) == model.get(key)
            if step % 500 == 499:
                tree.check_invariants()
        assert dict(tree.items()) == model
        tree.check_invariants()

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(0, 60), max_size=100),
           st.lists(st.integers(0, 60), max_size=100))
    def test_insert_then_delete_subset(self, inserts, deletes):
        tree = BPlusTree(order=3)
        model = {}
        for key in inserts:
            tree.insert(key, key)
            model[key] = key
        for key in deletes:
            assert tree.delete(key) == (key in model)
            model.pop(key, None)
        tree.check_invariants()
        assert dict(tree.items()) == model

"""Test package."""

"""Tests for the LRU recency list."""

import pytest

from repro.cache.lru import LruList


class TestOrdering:
    def test_touch_inserts(self):
        lru = LruList()
        lru.touch("a")
        lru.touch("b")
        assert list(lru.keys_hot_to_cold()) == ["b", "a"]
        assert len(lru) == 2

    def test_touch_promotes(self):
        lru = LruList()
        for key in ("a", "b", "c"):
            lru.touch(key)
        lru.touch("a")
        assert list(lru.keys_hot_to_cold()) == ["a", "c", "b"]

    def test_coldest(self):
        lru = LruList()
        for key in ("a", "b", "c"):
            lru.touch(key)
        assert lru.coldest() == "a"

    def test_empty_coldest(self):
        assert LruList().coldest() is None

    def test_remove(self):
        lru = LruList()
        lru.touch("a")
        lru.touch("b")
        assert lru.remove("a")
        assert not lru.remove("a")
        assert list(lru.keys_hot_to_cold()) == ["b"]

    def test_contains(self):
        lru = LruList()
        lru.touch("x")
        assert "x" in lru
        assert "y" not in lru

    def test_remove_head_and_tail(self):
        lru = LruList()
        for key in ("a", "b", "c"):
            lru.touch(key)
        lru.remove("c")  # head
        lru.remove("a")  # tail
        assert list(lru.keys_hot_to_cold()) == ["b"]


class TestEvictBatch:
    def test_takes_coldest_first(self):
        lru = LruList()
        for key in ("a", "b", "c", "d"):
            lru.touch(key)
        assert lru.evict_batch(2) == ["a", "b"]
        assert list(lru.keys_hot_to_cold()) == ["d", "c"]

    def test_batch_larger_than_list(self):
        lru = LruList()
        lru.touch("only")
        assert lru.evict_batch(10) == ["only"]
        assert len(lru) == 0

    def test_zero_batch(self):
        lru = LruList()
        lru.touch("a")
        assert lru.evict_batch(0) == []

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            LruList().evict_batch(-1)


class TestPinning:
    def test_pinned_keys_skipped(self):
        lru = LruList()
        for key in ("a", "b", "c"):
            lru.touch(key)
        lru.pin("a")
        assert lru.coldest() == "b"
        assert lru.evict_batch(2) == ["b", "c"]
        assert "a" in lru

    def test_unpin_restores_evictability(self):
        lru = LruList()
        lru.touch("a")
        lru.pin("a")
        lru.unpin("a")
        assert lru.evict_batch(1) == ["a"]

    def test_pin_unknown_rejected(self):
        with pytest.raises(KeyError):
            LruList().pin("ghost")

    def test_remove_clears_pin(self):
        lru = LruList()
        lru.touch("a")
        lru.pin("a")
        lru.remove("a")
        lru.touch("a")
        assert lru.evict_batch(1) == ["a"]  # pin did not survive removal

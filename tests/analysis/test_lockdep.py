"""Runtime lock-order validator (``repro.sync`` lockdep) unit tests.

Covers the ISSUE-8 satellite surface: the ``release()`` ordering
regression (non-owner release and failed non-blocking acquire must not
corrupt the held set), reentrant re-acquire recording no self edge,
the zero-overhead-when-unset guarantee, and the validator's three
violation kinds (cycle, rank inversion, unranked class) — including
the seeded order-inversion the acceptance criteria require runtime
lockdep to flag.
"""

from __future__ import annotations

import json
import threading
import time

import pytest

from repro import sync
from repro.sync import (
    LOCK_ORDER,
    DisciplinedLock,
    held_locks,
    lockdep_edges,
    lockdep_violations,
)


@pytest.fixture
def lockdep():
    was_on = sync.lockdep_enabled()
    sync.enable_lockdep()
    sync.reset_lockdep()
    yield sync
    sync.reset_lockdep()
    if not was_on:
        sync.disable_lockdep()


@pytest.fixture
def disarmed():
    was_on = sync.lockdep_enabled()
    sync.disable_lockdep()
    yield sync
    if was_on:
        sync.enable_lockdep()


def run_in_thread(function):
    worker = threading.Thread(target=function, name="lockdep-worker")
    worker.start()
    worker.join()


class TestReleaseOrdering:
    """The PR-8 satellite: held-set mutation only after a successful
    underlying release."""

    def test_non_owner_release_raises_without_corrupting_held_set(self):
        lock = DisciplinedLock("owner-lock", rank=1000)
        failure = {}

        def release_unowned():
            try:
                lock.release()
            except RuntimeError as error:
                failure["error"] = error
            failure["held_after"] = lock in held_locks()

        with lock:
            run_in_thread(release_unowned)
            # The non-owner got the RuntimeError and its held set was
            # never touched...
            assert isinstance(failure["error"], RuntimeError)
            assert failure["held_after"] is False
            # ...and the owner's bookkeeping survived intact.
            assert lock.held_by_me()
        assert not lock.held_by_me()

    def test_over_release_by_owner_leaves_held_set_consistent(self):
        lock = DisciplinedLock("over-release", rank=1000)
        lock.acquire()
        lock.release()
        with pytest.raises(RuntimeError):
            lock.release()
        # The failed second release must not have resurrected or
        # corrupted an entry.
        assert not lock.held_by_me()
        # The lock still works normally afterwards.
        with lock:
            assert lock.held_by_me()

    def test_failed_nonblocking_acquire_does_not_enter_held_set(self):
        lock = DisciplinedLock("contended", rank=1000)
        result = {}

        def try_acquire():
            result["acquired"] = lock.acquire(blocking=False)
            result["held"] = lock.held_by_me()

        with lock:
            run_in_thread(try_acquire)
        assert result["acquired"] is False
        assert result["held"] is False
        # And a later successful acquire from that state is clean.
        run_in_thread(lambda: (lock.acquire(blocking=False), lock.release()))


class TestRecorder:
    def test_nested_acquire_records_edge(self, lockdep):
        outer = DisciplinedLock("edge-outer", rank=1)
        inner = DisciplinedLock("edge-inner", rank=2)
        with outer:
            with inner:
                pass
        assert lockdep_edges()["edge-outer"]["edge-inner"] == 1
        assert lockdep_violations() == []

    def test_reentrant_reacquire_records_no_edge(self, lockdep):
        lock = DisciplinedLock("reentrant", rank=1)
        with lock:
            with lock:  # same object: never reaches the recorder
                pass
        assert "reentrant" not in lockdep_edges()
        assert lockdep_violations() == []

    def test_rank_inversion_is_flagged(self, lockdep):
        low = DisciplinedLock("inv-low", rank=10)
        high = DisciplinedLock("inv-high", rank=20)
        with high:
            with low:  # seeded order inversion
                pass
        kinds = [v.kind for v in lockdep_violations()]
        assert kinds == ["rank"]
        violation = lockdep_violations()[0]
        assert violation.acquired == "inv-low"
        assert "inv-high" in violation.held
        assert "strictly increasing" in violation.message

    def test_opposite_orders_close_a_cycle(self, lockdep):
        # Unranked-style cycle: use equal ranks so the rank check cannot
        # fire first... equal ranks ARE a rank violation, so use ranked
        # locks acquired in opposite orders across two edges with a
        # third class in between: a -> b, b -> a.
        a = DisciplinedLock("cyc-a", rank=None)
        b = DisciplinedLock("cyc-b", rank=None)
        with a:
            with b:
                pass
        with b:
            with a:
                pass
        kinds = {v.kind for v in lockdep_violations()}
        # Both classes are unranked (flagged once each) and the second
        # nesting closes the a -> b -> a cycle.
        assert "cycle" in kinds
        cycle = next(v for v in lockdep_violations() if v.kind == "cycle")
        assert "cyc-a" in cycle.message and "cyc-b" in cycle.message

    def test_same_class_two_instances_is_flagged(self, lockdep):
        first = DisciplinedLock("twin", rank=5)
        second = DisciplinedLock("twin", rank=5)
        with first:
            with second:
                pass
        kinds = [v.kind for v in lockdep_violations()]
        assert kinds == ["cycle"]
        assert "same-class nesting" in lockdep_violations()[0].message

    def test_unranked_lock_is_flagged_once(self, lockdep):
        mystery = DisciplinedLock("mystery")
        assert mystery.rank is None
        with mystery:
            pass
        with mystery:
            pass
        kinds = [v.kind for v in lockdep_violations()]
        assert kinds == ["unranked"]
        assert "LOCK_ORDER" in lockdep_violations()[0].message

    def test_violations_deduplicate_per_edge(self, lockdep):
        low = DisciplinedLock("dup-low", rank=1)
        high = DisciplinedLock("dup-high", rank=2)
        for _ in range(5):
            with high:
                with low:
                    pass
        assert len(lockdep_violations()) == 1
        assert lockdep_edges()["dup-high"]["dup-low"] == 5

    def test_declared_lock_order_resolves_ranks(self, lockdep):
        router = DisciplinedLock("sharded-router")
        engine = DisciplinedLock("dedup-engine")
        assert router.rank == LOCK_ORDER["sharded-router"]
        assert engine.rank == LOCK_ORDER["dedup-engine"]
        with router:
            with engine:
                pass
        assert lockdep_violations() == []

    def test_dump_json_round_trips(self, lockdep, tmp_path):
        outer = DisciplinedLock("dump-outer", rank=1)
        inner = DisciplinedLock("dump-inner", rank=2)
        with outer:
            with inner:
                pass
        path = tmp_path / "lockdep.json"
        sync.lockdep_dump_json(str(path))
        payload = json.loads(path.read_text())
        assert payload["tool"] == "lockdep"
        assert {
            "held": "dump-outer",
            "acquired": "dump-inner",
            "count": 1,
        } in payload["edges"]
        assert payload["violations"] == []


class TestDisarmed:
    def test_disarmed_records_nothing(self, disarmed):
        outer = DisciplinedLock("off-outer", rank=2)
        inner = DisciplinedLock("off-inner", rank=1)
        with outer:
            with inner:  # would be a rank inversion if armed
                pass
        assert lockdep_edges() == {}
        assert lockdep_violations() == []

    def test_enable_after_the_fact_sees_only_new_edges(self, disarmed):
        outer = DisciplinedLock("late-outer", rank=1)
        inner = DisciplinedLock("late-inner", rank=2)
        with outer:
            with inner:
                pass
        sync.enable_lockdep()
        try:
            assert lockdep_edges() == {}
            with outer:
                with inner:
                    pass
            assert lockdep_edges()["late-outer"]["late-inner"] == 1
        finally:
            sync.disable_lockdep()

    def test_disarmed_acquire_overhead_is_negligible(self, disarmed):
        """The zero-cost-when-unset guarantee (like the race detector):
        a disarmed acquire pays one module-global load + ``is not
        None``.  Bound the disarmed/armed-shape difference loosely —
        this is a smoke gate against accidental always-on
        instrumentation, not a microbenchmark."""
        lock = DisciplinedLock("overhead", rank=1)
        iterations = 20_000

        def timed() -> float:
            best = float("inf")
            for _ in range(3):
                start = time.perf_counter()
                for _ in range(iterations):
                    lock.acquire()
                    lock.release()
                best = min(best, time.perf_counter() - start)
            return best

        disarmed_time = timed()
        sync.enable_lockdep()
        try:
            armed_time = timed()
        finally:
            sync.disable_lockdep()
            sync.reset_lockdep()
        # Disarmed must not be slower than armed by more than noise —
        # i.e. the disarmed path really skips the recorder.  (Armed
        # pays a dict lookup + branch per outermost acquire; allow the
        # comparison plenty of jitter headroom on a loaded runner.)
        assert disarmed_time < armed_time * 3 + 0.05

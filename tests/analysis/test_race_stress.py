"""Race-detector stress harness (an ISSUE acceptance criterion).

Drives a watched :class:`~repro.datared.dedup.DedupEngine` and a full
:class:`~repro.systems` stack with up to 8 concurrent client threads
mixing ``write_many``, single writes, reads, flushes, and garbage
collection, and asserts the detector stays silent — then proves the
same detector *does* fire when the lock discipline is deliberately
bypassed, so "silent" means "clean", not "blind".

The fixture arms the runtime **lockdep** validator alongside the race
detector, so every stress run also proves the observed lock-order
graph stays cycle- and inversion-free (the CI analysis job runs this
file with both ``REPRO_RACE_DETECT=1`` and ``REPRO_LOCKDEP=1``)."""

from __future__ import annotations

import json
import random
import threading

import pytest

from repro import sync
from repro.analysis import racecheck
from repro.analysis.invariants import check_engine, check_system
from repro.datared.chunking import BLOCK_SIZE
from repro.datared.dedup import DedupEngine
from repro.datared.hashing import fingerprint

CHUNK = 4096
BLOCKS = CHUNK // BLOCK_SIZE
PARALLELISM = 8
OPS_PER_THREAD = 48


@pytest.fixture
def detector():
    racecheck.reset()
    racecheck.enable()
    lockdep_was_on = sync.lockdep_enabled()
    sync.enable_lockdep()
    sync.reset_lockdep()
    yield racecheck
    # Every stress run doubles as a lockdep run: the observed
    # held-set -> acquired edges must stay free of cycles, rank
    # inversions, and unranked classes.
    assert sync.lockdep_violations() == []
    sync.reset_lockdep()
    if not lockdep_was_on:
        sync.disable_lockdep()
    racecheck.disable()
    racecheck.reset()


def shared_payloads(seed: int, count: int = 6):
    rng = random.Random(seed)
    return [
        rng.randbytes(CHUNK // 2) + bytes(CHUNK // 2) for _ in range(count)
    ]


def test_stress_engine_is_race_free_at_parallelism_8(detector, tmp_path):
    # read_cache_chunks puts the decompressed-read LRU (and its
    # invalidation on overwrite/GC) under the same contention.
    engine = DedupEngine(num_buckets=2048, read_cache_chunks=64)
    detector.watch_engine(engine)
    payloads = shared_payloads(0xACE)  # shared → cross-thread dedup hits
    barrier = threading.Barrier(PARALLELISM)
    errors = []

    def client(index: int) -> None:
        rng = random.Random(index)
        region = index * 64 * BLOCKS  # own LBA region; shared content
        written = {}
        try:
            barrier.wait()
            for step in range(OPS_PER_THREAD):
                slot = region + rng.randrange(16) * BLOCKS
                data = payloads[rng.randrange(len(payloads))]
                if step % 5 == 4:  # batched entry point
                    engine.write_many([(slot, data)])
                else:
                    engine.write(slot, data)
                written[slot] = data
                if step % 7 == 6:
                    check = rng.choice(sorted(written))
                    if engine.read(check).data != written[check]:
                        errors.append(f"thread {index}: stale read")
                if index == 0 and step % 16 == 15:
                    engine.flush()
                if index == 1 and step % 16 == 15:
                    engine.collect_garbage(0.3)
        except Exception as error:  # surfaced after join
            errors.append(f"thread {index}: {error!r}")

    threads = [
        threading.Thread(target=client, args=(index,), name=f"client-{index}")
        for index in range(PARALLELISM)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    assert errors == []
    races = detector.reports()
    assert races == [], "\n".join(race.describe() for race in races)
    engine.flush()
    assert check_engine(engine) == []

    # The JSON artifact CI uploads is valid and empty on a clean run.
    artifact = tmp_path / "races.json"
    detector.dump_json(str(artifact))
    assert json.loads(artifact.read_text()) == {"version": 1, "races": []}


def test_stress_full_system_is_race_free(detector):
    from repro.datared.compression import ZlibCompressor
    from repro.systems.config import SystemConfig
    from repro.systems.server import StorageServer, SystemKind

    storage = StorageServer.build(
        SystemKind.FIDR,
        num_buckets=1024,
        cache_lines=64,
        compressor=ZlibCompressor(),
        config=SystemConfig(batch_chunks=8),
    )
    system = storage.system
    detector.watch_engine(system.engine)
    detector.watch_system(system)
    payloads = shared_payloads(0xBEE)
    barrier = threading.Barrier(4)
    errors = []

    def client(index: int) -> None:
        rng = random.Random(index)
        region = index * 64
        try:
            barrier.wait()
            for step in range(32):
                storage.write(
                    region + rng.randrange(16),
                    payloads[rng.randrange(len(payloads))],
                )
                if step % 8 == 7:
                    storage.read(region + rng.randrange(16), 1)
        except Exception as error:
            errors.append(f"thread {index}: {error!r}")

    threads = [threading.Thread(target=client, args=(i,)) for i in range(4)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    storage.flush()

    assert errors == []
    races = detector.reports()
    assert races == [], "\n".join(race.describe() for race in races)
    assert check_system(system) == []


def test_stress_sharded_engine_is_race_free(detector):
    """8 threads through the sharded scatter path, detector silent.

    Every shard's guarded structures are watched individually; the
    fan-out worker threads must therefore hold the owning shard's lock
    whenever they touch that shard's tables, and the router-level
    directory updates must happen under the router lock — otherwise the
    disjoint-lockset check fires exactly as in the negative control
    below.  ``check_sharded_engine`` then asserts the cluster ledger
    (summed per-shard stats == summed containers == summed records) and
    the shard-selection invariant survived the contention.
    """
    from repro.analysis.invariants import check_sharded_engine
    from repro.datared import ShardedDedupEngine

    engine = ShardedDedupEngine(4, num_buckets=512, read_cache_chunks=32)
    for shard in engine.shards:
        detector.watch_engine(shard)
    payloads = shared_payloads(0xCAB)
    barrier = threading.Barrier(PARALLELISM)
    errors = []

    def client(index: int) -> None:
        rng = random.Random(index)
        region = index * 64 * BLOCKS  # own LBA region; shared content
        written = {}
        try:
            barrier.wait()
            for step in range(OPS_PER_THREAD):
                slot = region + rng.randrange(16) * BLOCKS
                data = payloads[rng.randrange(len(payloads))]
                if step % 5 == 4:  # batched entry point, 2-chunk batch
                    other = region + rng.randrange(16) * BLOCKS
                    if other == slot:
                        other = slot + 16 * BLOCKS
                    partner = payloads[rng.randrange(len(payloads))]
                    engine.write_many([(slot, data), (other, partner)])
                    written[other] = partner
                else:
                    engine.write(slot, data)
                written[slot] = data
                if step % 11 == 10:  # cross-shard trim under contention
                    engine.trim(slot)
                    written[slot] = bytes(CHUNK)
                if step % 7 == 6:
                    check = rng.choice(sorted(written))
                    if engine.read(check).data != written[check]:
                        errors.append(f"thread {index}: stale read")
                if index == 0 and step % 16 == 15:
                    engine.flush()
                if index == 1 and step % 16 == 15:
                    engine.collect_garbage(0.3)
        except Exception as error:  # surfaced after join
            errors.append(f"thread {index}: {error!r}")

    threads = [
        threading.Thread(target=client, args=(index,), name=f"shard-{index}")
        for index in range(PARALLELISM)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    try:
        assert errors == []
        races = detector.reports()
        assert races == [], "\n".join(race.describe() for race in races)
        engine.flush()
        assert check_sharded_engine(engine) == []
    finally:
        engine.shutdown()


def test_detector_flags_a_seeded_lock_bypass(detector):
    """Negative control: the same harness with the discipline broken.

    ``_write_many_locked`` is the engine's internals *without* the lock;
    calling it from two threads must produce disjoint-lockset reports
    even when the calls never physically overlap — Eraser checks the
    discipline, not the interleaving luck of one run."""
    engine = DedupEngine(num_buckets=512)
    detector.watch_engine(engine)
    payloads = shared_payloads(0xDAD)

    def bypass(region: int) -> None:
        requests = [
            (region + slot * BLOCKS, payloads[slot % len(payloads)])
            for slot in range(4)
        ]
        digests = [fingerprint(data) for _, data in requests]
        engine._write_many_locked(requests, digests)

    bypass(0)  # main thread, no lock held
    worker = threading.Thread(target=bypass, args=(1024 * BLOCKS,))
    worker.start()
    worker.join()

    races = detector.reports()
    assert races, "deliberate lock bypass must be flagged"
    racy_objects = {race.object_name for race in races}
    # The engine's core shared structures are among the flagged objects.
    assert "engine.pbn_map" in racy_objects
    assert "engine.stats" in racy_objects

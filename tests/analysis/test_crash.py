"""Tests for the kill-at-random-offset crash/recovery harness.

The harness itself is the tentpole correctness proof (every byte-offset
tear class, plain and sharded); these tests pin its contract so CI can
run a small configuration and still trust the verdict.
"""

from repro.analysis.crash import (
    TEAR_CLASSES,
    CrashReport,
    PlainCrashHarness,
    ShardedCrashHarness,
    classify_offset,
    main,
    run,
    tear_offsets,
)
from repro.datared.journal import MetadataJournal


def _fenced_image():
    journal = MetadataJournal()
    journal.on_new_chunk(1, b"\x01" * 32, 0, 0, 100, 4096)
    journal.on_map(8, 1)
    journal.commit()
    journal.on_map(16, 1)
    journal.commit()
    return journal.to_bytes()


class TestTearPlacement:
    def test_classify_covers_every_offset(self):
        image = _fenced_image()
        for offset in range(len(image) + 1):
            assert classify_offset(image, offset) in TEAR_CLASSES

    def test_full_length_is_complete(self):
        image = _fenced_image()
        assert classify_offset(image, len(image)) == "complete"

    def test_offsets_cover_all_classes(self):
        image = _fenced_image()
        classes = {
            classify_offset(image, offset)
            for offset in tear_offsets(image, 0, every_byte=False)
        }
        assert classes == set(TEAR_CLASSES)

    def test_every_byte_sweep_is_exhaustive(self):
        image = _fenced_image()
        offsets = tear_offsets(image, 0, every_byte=True)
        # Tears live in the append region (stable, len]: offset 0 is the
        # already-durable prefix itself, not a crash state.
        assert offsets == list(range(1, len(image) + 1))

    def test_offsets_respect_stable_prefix(self):
        image = _fenced_image()
        stable = len(_fenced_image()) // 2
        assert all(
            offset > stable or offset == len(image)
            for offset in tear_offsets(image, stable, every_byte=False)
        )


class TestPlainHarness:
    def test_small_run_is_clean(self):
        harness = PlainCrashHarness(seed=7, checkpoint_every_commits=3)
        harness.run_workload(ops=24)
        report = harness.verify()
        assert report.ok, report.render()
        assert report.tears > 0
        assert set(report.classes) == set(TEAR_CLASSES)


class TestShardedHarness:
    def test_small_run_is_clean(self):
        harness = ShardedCrashHarness(shards=2, seed=11)
        harness.run_workload(ops=24)
        report = harness.verify()
        assert report.ok, report.render()
        assert report.tears > 0
        assert set(report.classes) == set(TEAR_CLASSES)


class TestReport:
    def test_ok_requires_every_class_exercised(self):
        report = CrashReport(mode="plain", captures=1)
        report.tears = 5
        report.classes = {"mid-header": 5}
        assert not report.ok  # four classes never exercised

    def test_merge_accumulates(self):
        left = CrashReport(mode="plain", captures=1)
        left.tears = 2
        left.classes = {"mid-header": 2}
        right = CrashReport(mode="sharded", captures=2)
        right.tears = 3
        right.classes = {"mid-crc": 3}
        left.merge(right)
        assert left.tears == 5
        assert left.captures == 3
        assert left.classes == {"mid-header": 2, "mid-crc": 3}


class TestEntryPoints:
    def test_run_combines_both_modes(self):
        report = run(seed=3, ops=12, shards=2, rounds=1)
        assert report.ok, report.render()
        assert report.mode == "plain+sharded"

    def test_cli_smoke_exits_zero(self, capsys):
        assert main(["--smoke"]) == 0
        out = capsys.readouterr().out
        assert "OK" in out

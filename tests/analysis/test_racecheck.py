"""Unit tests for the Eraser-style lock-set race detector.

Covers the state machine (synthetic seeded race detected, disciplined
code clean), method-granularity tracking, raise-on-race mode, unwatch,
and — an acceptance criterion — that the detector costs *nothing* when
disabled: no wrapper class, no metadata, ``type(obj)`` unchanged."""

from __future__ import annotations

import json
import threading

import pytest

from repro.analysis import racecheck
from repro.analysis.racecheck import METHODS_FIELD, RaceError
from repro.sync import DisciplinedLock, held_locks


class Counter:
    def __init__(self):
        self.value = 0

    def bump(self):
        self.value += 1

    def peek(self):
        return self.value


@pytest.fixture
def detector():
    """Enable the detector for one test, restoring global state after."""
    racecheck.reset()
    racecheck.enable()
    yield racecheck
    racecheck.set_raise_on_race(False)
    racecheck.disable()
    racecheck.reset()


def run_in_thread(function):
    worker = threading.Thread(target=function, name="racecheck-worker")
    worker.start()
    worker.join()


class TestLockDiscipline:
    def test_disciplined_lock_tracks_held_set(self):
        lock = DisciplinedLock("test-lock", rank=1000)
        assert not lock.held_by_me()
        assert lock not in held_locks()
        with lock:
            assert lock.held_by_me()
            assert lock in held_locks()
            with lock:  # reentrant: still held after inner exit
                pass
            assert lock in held_locks()
        assert lock not in held_locks()

    def test_held_set_is_per_thread(self):
        lock = DisciplinedLock("test-lock", rank=1000)
        observed = {}

        def peek():
            observed["held"] = lock in held_locks()

        with lock:
            run_in_thread(peek)
        assert observed["held"] is False


class TestDetector:
    def test_seeded_unlocked_race_is_detected(self, detector):
        counter = detector.watch(Counter(), name="counter")
        counter.bump()  # main thread, no locks
        run_in_thread(counter.bump)  # second thread, no locks

        races = detector.reports()
        assert races, "seeded race must be detected"
        assert races[0].object_name == "counter"
        assert races[0].field == "value"
        assert races[0].first_thread != races[0].second_thread
        assert "race on counter.value" in races[0].describe()

    def test_lock_disciplined_counter_is_clean(self, detector):
        lock = DisciplinedLock("counter-lock", rank=1000)
        counter = detector.watch(Counter(), name="counter")

        def locked_bumps():
            for _ in range(100):
                with lock:
                    counter.bump()

        threads = [
            threading.Thread(target=locked_bumps) for _ in range(4)
        ]
        with lock:
            counter.bump()  # main thread participates too
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert detector.reports() == []
        assert counter.value == 401  # and no update was lost

    def test_single_thread_never_races(self, detector):
        counter = detector.watch(Counter(), name="counter")
        for _ in range(50):
            counter.bump()
        assert detector.reports() == []

    def test_method_calls_are_tracked_at_object_granularity(self, detector):
        class Table:
            def __init__(self):
                self._items = {}

            def insert(self, key, value):
                self._items[key] = value

            def get(self, key):
                return self._items.get(key)

        table = detector.watch(Table(), name="table", mutators={"insert"})
        table.insert(1, "a")
        run_in_thread(lambda: table.insert(2, "b"))

        races = detector.reports()
        assert [race.field for race in races] == [METHODS_FIELD]

    def test_reads_alone_never_race(self, detector):
        counter = detector.watch(Counter(), name="counter")
        counter.bump()  # single writer...
        run_in_thread(counter.peek)  # ...other threads only read
        run_in_thread(counter.peek)
        assert detector.reports() == []

    def test_raise_on_race(self, detector):
        detector.set_raise_on_race(True)
        counter = detector.watch(Counter(), name="counter")
        counter.bump()
        failure = {}

        def racy():
            try:
                counter.bump()
            except RaceError as error:
                failure["error"] = error

        run_in_thread(racy)
        assert isinstance(failure.get("error"), RaceError)

    def test_each_field_reported_once(self, detector):
        counter = detector.watch(Counter(), name="counter")
        counter.bump()
        run_in_thread(counter.bump)
        run_in_thread(counter.bump)
        assert len(detector.reports()) == 1

    def test_unwatch_restores_class(self, detector):
        counter = detector.watch(Counter(), name="counter")
        assert type(counter).__name__ == "WatchedCounter"
        detector.unwatch(counter)
        assert type(counter) is Counter
        counter.bump()
        run_in_thread(counter.bump)
        assert detector.reports() == []

    def test_dump_json(self, detector, tmp_path):
        counter = detector.watch(Counter(), name="counter")
        counter.bump()
        run_in_thread(counter.bump)
        artifact = tmp_path / "races.json"
        detector.dump_json(str(artifact))
        payload = json.loads(artifact.read_text())
        assert payload["version"] == 1
        assert payload["races"][0]["object"] == "counter"
        assert payload["races"][0]["field"] == "value"


class TestZeroOverheadWhenDisabled:
    def test_watch_is_identity_when_disabled(self):
        assert not racecheck.enabled()
        counter = Counter()
        watched = racecheck.watch(counter, name="counter")
        assert watched is counter
        assert type(counter) is Counter  # no wrapper class installed
        assert not hasattr(counter, "_racecheck_meta_")
        counter.bump()
        assert racecheck.reports() == []

    def test_watch_engine_is_noop_when_disabled(self):
        from repro.datared.dedup import DedupEngine

        engine = DedupEngine(num_buckets=64)
        racecheck.watch_engine(engine)
        assert type(engine) is DedupEngine
        assert type(engine.pbn_map).__name__ == "PbnMap"

"""Test package."""

"""Tests for rack-level deployment planning."""

import pytest

from repro.analysis.scaleout import plan_deployment
from repro.experiments import SMOKE_SCALE, get_report

GB = 1e9
TB = 1e12


@pytest.fixture(scope="module")
def fidr_report():
    return get_report("fidr", "write-h", SMOKE_SCALE, server="target")


@pytest.fixture(scope="module")
def baseline_report():
    return get_report("baseline", "write-h", SMOKE_SCALE, server="target")


class TestPlanning:
    def test_sockets_scale_with_target(self, fidr_report):
        import math

        small = plan_deployment(fidr_report, 50 * GB, 500 * TB)
        large = plan_deployment(fidr_report, 500 * GB, 500 * TB)
        assert large.sockets > small.sockets
        assert large.sockets == math.ceil(
            500 * GB / large.per_socket_throughput
        )

    def test_baseline_needs_more_sockets(self, fidr_report, baseline_report):
        fidr = plan_deployment(fidr_report, 300 * GB, 500 * TB)
        baseline = plan_deployment(
            baseline_report, 300 * GB, 500 * TB, use_cache_engine=False
        )
        assert baseline.sockets >= 2 * fidr.sockets

    def test_capacity_drives_ssds(self, fidr_report):
        small = plan_deployment(fidr_report, 50 * GB, 100 * TB)
        large = plan_deployment(fidr_report, 50 * GB, 1000 * TB)
        assert large.data_ssds > 5 * small.data_ssds
        # Reduction: 1000 TB effective needs ~250 one-TB drives.
        assert large.data_ssds == pytest.approx(250, rel=0.1)

    def test_write_bandwidth_can_dominate_ssd_count(self, fidr_report):
        # 10 TB stored at 0.25 is 3 drives of capacity, but sustaining
        # 500 GB/s of (well-reduced) ingest needs ~11 drives of write BW.
        plan = plan_deployment(fidr_report, 500 * GB, 10 * TB)
        capacity_only = 3
        assert plan.data_ssds > capacity_only

    def test_cost_per_tb_falls_with_capacity(self, fidr_report):
        small = plan_deployment(fidr_report, 75 * GB, 100 * TB)
        large = plan_deployment(fidr_report, 75 * GB, 1000 * TB)
        assert large.cost_per_effective_tb < small.cost_per_effective_tb

    def test_summary_rows_render(self, fidr_report):
        plan = plan_deployment(fidr_report, 75 * GB, 500 * TB)
        rows = plan.summary_rows()
        assert any("sockets" in str(row[0]) for row in rows)
        assert plan.bottleneck

    def test_validation(self, fidr_report):
        with pytest.raises(ValueError):
            plan_deployment(fidr_report, 0, 1 * TB)
        with pytest.raises(ValueError):
            plan_deployment(fidr_report, 1 * GB, 0)

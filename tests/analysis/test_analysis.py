"""Tests for projection, throughput solving, cost, and report helpers."""

import pytest
from hypothesis import given, strategies as st

from repro.analysis.cost import StorageCostModel
from repro.analysis.projection import fit_least_squares, fit_two_points, sweep
from repro.analysis.report import Comparison, format_comparisons, format_table, gbps, pct
from repro.analysis.throughput import ThroughputCeilings


class TestProjection:
    def test_two_point_fit(self):
        fit = fit_two_points((1.0, 10.0), (2.0, 20.0))
        assert fit(7.5) == pytest.approx(75.0)
        assert fit.slope == pytest.approx(10.0)
        assert fit.intercept == pytest.approx(0.0)

    def test_solve_inverts(self):
        fit = fit_two_points((0.0, 5.0), (10.0, 25.0))
        assert fit.solve(25.0) == pytest.approx(10.0)

    def test_flat_solve_rejected(self):
        fit = fit_two_points((0.0, 5.0), (1.0, 5.0))
        with pytest.raises(ZeroDivisionError):
            fit.solve(10.0)

    def test_identical_x_rejected(self):
        with pytest.raises(ValueError):
            fit_two_points((1.0, 1.0), (1.0, 2.0))

    def test_least_squares_on_exact_line(self):
        points = [(x, 3.0 * x + 1.0) for x in range(5)]
        fit = fit_least_squares(points)
        assert fit.slope == pytest.approx(3.0)
        assert fit.intercept == pytest.approx(1.0)

    def test_least_squares_validation(self):
        with pytest.raises(ValueError):
            fit_least_squares([(1.0, 1.0)])
        with pytest.raises(ValueError):
            fit_least_squares([(1.0, 1.0), (1.0, 2.0)])

    def test_sweep(self):
        assert sweep(lambda x: x * 2, [1, 2]) == [(1, 2), (2, 4)]

    @given(st.floats(-100, 100), st.floats(-100, 100))
    def test_fit_passes_through_points(self, y1, y2):
        fit = fit_two_points((0.0, y1), (1.0, y2))
        assert fit(0.0) == pytest.approx(y1, abs=1e-9)
        assert fit(1.0) == pytest.approx(y2, abs=1e-9)


class TestThroughputCeilings:
    def test_minimum_binds(self):
        solved = ThroughputCeilings({"cpu": 30e9, "dram": 40e9})
        assert solved.throughput == 30e9
        assert solved.bottleneck == "cpu"

    def test_speedup(self):
        fast = ThroughputCeilings({"x": 60e9})
        slow = ThroughputCeilings({"x": 20e9})
        assert fast.speedup_over(slow) == pytest.approx(3.0)


class TestCostModel:
    def test_no_reduction_is_pure_ssd(self):
        cost = StorageCostModel().no_reduction_cost(100e12)
        assert cost.total == pytest.approx(100e3 * 0.5)

    def test_fidr_storage_shrinks_by_reduction(self):
        model = StorageCostModel()
        cost = model.fidr_cost(25e9, 100e12)
        assert cost.components["data_ssd"] == pytest.approx(100e3 * 0.5 * 0.25)

    def test_fidr_machinery_scales_with_throughput(self):
        model = StorageCostModel()
        slow = model.fidr_cost(25e9, 500e12)
        fast = model.fidr_cost(75e9, 500e12)
        assert fast.components["fidr_nics"] == pytest.approx(
            3 * slow.components["fidr_nics"]
        )
        assert fast.components["data_ssd"] == slow.components["data_ssd"]

    def test_savings_shrink_with_throughput(self):
        model = StorageCostModel()
        reference = model.no_reduction_cost(500e12)
        saving_25 = model.fidr_cost(25e9, 500e12).savings_vs(reference)
        saving_75 = model.fidr_cost(75e9, 500e12).savings_vs(reference)
        assert saving_25 > saving_75 > 0.4

    def test_baseline_partial_reduction_costs_more(self):
        model = StorageCostModel()
        baseline = model.baseline_cost(75e9, 500e12, per_socket_cap=25e9)
        fidr = model.fidr_cost(75e9, 500e12)
        assert baseline.total > fidr.total
        # Two thirds of the stream went unreduced.
        assert baseline.components["data_ssd"] == pytest.approx(
            500e3 * 0.5 * (1 / 3 * 0.25 + 2 / 3), rel=0.01
        )

    def test_baseline_within_cap_matches_full_reduction_storage(self):
        model = StorageCostModel()
        baseline = model.baseline_cost(20e9, 100e12, per_socket_cap=25e9)
        assert baseline.components["data_ssd"] == pytest.approx(
            100e3 * 0.5 * 0.25
        )

    def test_savings_vs_zero_reference_rejected(self):
        model = StorageCostModel()
        with pytest.raises(ValueError):
            model.fidr_cost(1e9, 1e12).savings_vs(
                model.no_reduction_cost(0)
            )


class TestReportHelpers:
    def test_pct_and_gbps(self):
        assert pct(0.125) == "12.5%"
        assert gbps(75e9) == "75.0 GB/s"

    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [["x", 1], ["yy", 2.5]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")

    def test_row_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            format_table(["a"], [["x", "extra"]])

    def test_comparison_error(self):
        comparison = Comparison("metric", paper=100.0, measured=110.0)
        assert comparison.relative_error == pytest.approx(0.10)

    def test_comparison_without_paper_value(self):
        comparison = Comparison("metric", paper=None, measured=1.0)
        assert comparison.relative_error is None
        assert "-" in comparison.row()

    def test_format_comparisons(self):
        text = format_comparisons(
            [Comparison("m", 1.0, 1.1, "GB/s")], title="T"
        )
        assert "T" in text
        assert "+10%" in text

"""repro-lint rule tests: every rule gets a planted positive fixture, a
clean negative fixture, and a suppression check — plus the self-check
that the real tree lints clean (the acceptance bar for the whole
suite)."""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

from repro.analysis.lint import RULES, Finding, lint_paths, lint_source, main

REPO = Path(__file__).resolve().parents[2]


def rules_of(findings):
    return [finding.rule for finding in findings]


def lines_of(findings, rule):
    return [finding.line for finding in findings if finding.rule == rule]


def src(text: str) -> str:
    return textwrap.dedent(text)


# -- R001: blocking calls in async defs --------------------------------------


class TestR001Blocking:
    FIXTURE = src(
        """
        import time, zlib, socket

        async def handler():
            time.sleep(0.1)
            payload = zlib.compress(b"x")
            sock = socket.create_connection(("host", 1))
            with open("state") as handle:
                pass
        """
    )

    def test_detects_blocking_calls_in_coroutine(self):
        findings = lint_source(self.FIXTURE, module="repro.net.fixture")
        assert rules_of(findings) == ["R001"] * 4
        assert lines_of(findings, "R001") == [5, 6, 7, 8]

    def test_sync_function_is_allowed(self):
        clean = src(
            """
            import time

            def backend_task():
                time.sleep(0.1)
            """
        )
        assert lint_source(clean, module="repro.net.fixture") == []

    def test_nested_sync_def_inside_coroutine_is_allowed(self):
        clean = src(
            """
            import time

            async def handler(loop):
                def blocking_job():
                    time.sleep(0.1)
                await loop.run_in_executor(None, blocking_job)
            """
        )
        assert lint_source(clean, module="repro.net.fixture") == []

    def test_rule_is_scoped_to_the_serving_layer(self):
        assert lint_source(self.FIXTURE, module="repro.workloads.fixture") == []

    def test_suppression(self):
        fixture = src(
            """
            import time

            async def handler():
                time.sleep(0.1)  # repro-lint: disable=R001
            """
        )
        assert lint_source(fixture, module="repro.net.fixture") == []


# -- R002: guarded-by discipline ----------------------------------------------


GUARDED_CLASS = src(
    """
    class Engine:
        def __init__(self):
            self.lock = object()
            self.stats = 0  # guarded-by: self.lock

        def unlocked(self):
            self.stats += 1

        def locked(self):
            with self.lock:
                self.stats += 1

        def helper(self):  # repro-lint: holds self.lock
            self.stats += 1
    """
)


class TestR002GuardedBy:
    def test_mutation_without_lock_is_flagged(self):
        findings = lint_source(GUARDED_CLASS, module="repro.datared.fixture")
        assert rules_of(findings) == ["R002"]
        assert lines_of(findings, "R002") == [8]

    def test_with_block_and_holds_annotation_satisfy_the_guard(self):
        findings = lint_source(GUARDED_CLASS, module="repro.datared.fixture")
        assert lines_of(findings, "R002") == [8]  # 12 and 15 are clean

    def test_init_is_exempt(self):
        findings = lint_source(GUARDED_CLASS, module="repro.datared.fixture")
        assert 5 not in lines_of(findings, "R002")

    def test_guard_is_inherited_by_subclasses(self):
        fixture = GUARDED_CLASS + src(
            """
            class Child(Engine):
                def racy(self):
                    self.stats = 5
            """
        )
        findings = lint_source(fixture, module="repro.datared.fixture")
        assert lines_of(findings, "R002") == [8, 19]

    def test_nested_attribute_mutation_counts(self):
        fixture = src(
            """
            class System:
                def __init__(self):
                    self.lock = object()
                    self.memory = object()  # guarded-by: self.lock

                def racy(self):
                    self.memory.bytes_read = 7
            """
        )
        findings = lint_source(fixture, module="repro.systems.fixture")
        assert lines_of(findings, "R002") == [8]

    def test_discipline_guard_enforced_across_modules_by_name(self, tmp_path):
        package = tmp_path / "repro" / "datared"
        package.mkdir(parents=True)
        (package / "report.py").write_text(
            src(
                """
                class Report:
                    reclaimed_chunks = 0  # guarded-by: single-writer

                    def tally(self):
                        self.reclaimed_chunks += 1
                """
            )
        )
        (package / "other.py").write_text(
            src(
                """
                def poke(report):
                    report.reclaimed_chunks += 1


                def sanctioned(report):  # repro-lint: holds single-writer
                    report.reclaimed_chunks += 1
                """
            )
        )
        findings, scanned = lint_paths([tmp_path])
        assert scanned == 2
        assert rules_of(findings) == ["R002"]
        assert findings[0].path.endswith("other.py")
        assert findings[0].line == 3

    def test_suppression(self):
        fixture = GUARDED_CLASS.replace(
            "self.stats += 1\n\n    def locked",
            "self.stats += 1  # repro-lint: disable=R002\n\n    def locked",
        )
        assert lint_source(fixture, module="repro.datared.fixture") == []


# -- R003: determinism --------------------------------------------------------


class TestR003Determinism:
    FIXTURE = src(
        """
        import random
        import time

        def step():
            started = time.time()
            jitter = random.random()
            choice = random.randrange(4)
        """
    )

    def test_detects_wall_clock_and_global_randomness(self):
        findings = lint_source(self.FIXTURE, module="repro.sim.fixture")
        assert rules_of(findings) == ["R003"] * 3
        # systems is also R007 territory (timing overlap is asserted in
        # TestR007ObservabilityDiscipline), so select R003 alone here.
        findings = lint_source(
            self.FIXTURE, module="repro.systems.fixture", rules=["R003"]
        )
        assert rules_of(findings) == ["R003"] * 3

    def test_seeded_random_instance_is_allowed(self):
        clean = src(
            """
            import random

            def build(seed):
                rng = random.Random(seed)
                return rng.random()
            """
        )
        assert lint_source(clean, module="repro.sim.fixture") == []

    def test_rule_is_scoped_to_sim_and_systems(self):
        assert lint_source(self.FIXTURE, module="repro.workloads.fixture") == []

    def test_suppression(self):
        fixture = self.FIXTURE.replace(
            "time.time()", "time.time()  # repro-lint: disable=R003"
        )
        findings = lint_source(fixture, module="repro.sim.fixture")
        assert lines_of(findings, "R003") == [7, 8]


# -- R004: integral ledgers ---------------------------------------------------


class TestR004IntegralLedgers:
    def test_detects_float_tainted_counter_assignments(self):
        fixture = src(
            """
            class Stats:
                def tally(self, n):
                    self.stored_bytes += n * 0.5
                    self.chunk_count = n / 2
                    self.unique_chunks += 1
            """
        )
        findings = lint_source(fixture, module="repro.datared.fixture")
        assert rules_of(findings) == ["R004"] * 2
        assert lines_of(findings, "R004") == [4, 5]

    def test_ratios_and_int_wrapped_values_are_allowed(self):
        clean = src(
            """
            class Stats:
                def tally(self, n):
                    self.ratio = n / 2
                    self.live_bytes = int(n / 2)
                    self.block_count = n // 2
            """
        )
        assert lint_source(clean, module="repro.datared.fixture") == []

    def test_rule_is_scoped_to_datared(self):
        fixture = "class T:\n    def f(self, n):\n        self.busy_bytes = n / 2\n"
        assert lint_source(fixture, module="repro.sim.fixture") == []

    def test_suppression(self):
        fixture = (
            "class T:\n    def f(self, n):\n"
            "        self.chunk_count = n / 2  # repro-lint: disable=R004\n"
        )
        assert lint_source(fixture, module="repro.datared.fixture") == []


# -- R005: swallowed errors ---------------------------------------------------


class TestR005SwallowedErrors:
    FIXTURE = src(
        """
        def serve():
            try:
                work()
            except:
                pass
            try:
                work()
            except Exception:
                pass
        """
    )

    def test_detects_bare_and_silent_broad_excepts(self):
        findings = lint_source(self.FIXTURE, module="repro.net.fixture")
        assert rules_of(findings) == ["R005"] * 2
        findings = lint_source(self.FIXTURE, module="repro.systems.server")
        assert rules_of(findings) == ["R005"] * 2

    def test_handled_and_specific_excepts_are_allowed(self):
        clean = src(
            """
            def serve():
                try:
                    work()
                except Exception as error:
                    log(error)
                try:
                    work()
                except (ConnectionResetError, BrokenPipeError):
                    pass
            """
        )
        assert lint_source(clean, module="repro.net.fixture") == []

    def test_rule_is_scoped_to_the_serving_layer(self):
        assert lint_source(self.FIXTURE, module="repro.datared.fixture") == []

    def test_suppression(self):
        fixture = self.FIXTURE.replace(
            "except:", "except:  # repro-lint: disable=R005"
        )
        findings = lint_source(fixture, module="repro.net.fixture")
        assert lines_of(findings, "R005") == [9]


# -- machinery ----------------------------------------------------------------


class TestR006HotPathCopies:
    FIXTURE = src(
        """
        def pack(payload):  # repro-lint: hot-path
            owned = bytes(payload)
            extra = bytearray(payload)
            pinned = payload.tobytes()
            head = payload[:16]
            return owned, extra, pinned, head
        """
    )

    def test_detects_copies_in_hot_path(self):
        findings = lint_source(self.FIXTURE, module="repro.datared.fixture")
        assert rules_of(findings) == ["R006"] * 4
        assert lines_of(findings, "R006") == [3, 4, 5, 6]

    def test_cold_functions_are_not_flagged(self):
        clean = src(
            """
            def pack(payload):
                return bytes(payload), payload.tobytes(), payload[:16]
            """
        )
        assert lint_source(clean, module="repro.datared.fixture") == []

    def test_memoryview_slices_are_zero_copy(self):
        clean = src(
            """
            def split(payload):  # repro-lint: hot-path
                view = memoryview(payload)
                piece = view[0:4096]
                tag, body = view[:1], view[1:]
                direct = memoryview(payload)[8:]
                return piece, tag, body, direct
            """
        )
        assert lint_source(clean, module="repro.datared.fixture") == []

    def test_copy_ok_reason_sanctions_a_copy(self):
        clean = src(
            """
            def pack(payload):  # repro-lint: hot-path
                return bytes(payload)  # repro-lint: copy-ok container boundary
            """
        )
        assert lint_source(clean, module="repro.datared.fixture") == []

    def test_bare_copy_ok_without_reason_does_not_suppress(self):
        planted = src(
            """
            def pack(payload):  # repro-lint: hot-path
                return bytes(payload)  # repro-lint: copy-ok
            """
        )
        findings = lint_source(planted, module="repro.datared.fixture")
        assert rules_of(findings) == ["R006"]

    def test_combined_holds_and_hot_path_annotation(self):
        planted = src(
            """
            class Engine:
                def _write(  # repro-lint: holds self.lock, hot-path
                    self, payload
                ):
                    return bytes(payload)
            """
        )
        findings = lint_source(planted, module="repro.datared.fixture")
        assert rules_of(findings) == ["R006"]

    def test_marker_on_closing_paren_line_of_signature(self):
        planted = src(
            """
            def compress_many(
                buffers,
            ):  # repro-lint: hot-path
                return [bytes(data) for data in buffers]
            """
        )
        findings = lint_source(planted, module="repro.datared.fixture")
        assert rules_of(findings) == ["R006"]

    def test_nested_helper_inherits_hotness(self):
        planted = src(
            """
            def outer(payload):  # repro-lint: hot-path
                def helper():
                    return payload.tobytes()
                return helper()
            """
        )
        findings = lint_source(planted, module="repro.datared.fixture")
        assert rules_of(findings) == ["R006"]

    def test_rule_is_scoped_to_repro_modules(self):
        findings = lint_source(self.FIXTURE, module="tests.fixture")
        assert "R006" not in rules_of(findings)

    def test_suppression(self):
        planted = src(
            """
            def pack(payload):  # repro-lint: hot-path
                return bytes(payload)  # repro-lint: disable=R006
            """
        )
        assert lint_source(planted, module="repro.datared.fixture") == []


# -- R007: observability discipline -------------------------------------------


class TestR007ObservabilityDiscipline:
    FIXTURE = src(
        """
        import time

        def handle(event):
            start = time.perf_counter_ns()
            result = process(event)
            print("handled in", time.perf_counter_ns() - start)
            return result
        """
    )

    def test_timing_and_print_are_flagged_in_instrumented_path(self):
        findings = lint_source(self.FIXTURE, module="repro.net.fixture")
        assert rules_of(findings) == ["R007"] * 3
        assert lines_of(findings, "R007") == [5, 7, 7]

    def test_every_instrumented_package_is_covered(self):
        planted = src(
            """
            import time

            def tick():
                return time.monotonic()
            """
        )
        for package in (
            "repro.datared", "repro.net", "repro.cache", "repro.hw",
            "repro.parallel", "repro.sync",
        ):
            findings = lint_source(planted, module=f"{package}.fixture")
            assert "R007" in rules_of(findings), package

    def test_systems_timing_trips_both_r003_and_r007(self):
        planted = src(
            """
            import time

            def step():
                return time.time()
            """
        )
        findings = lint_source(planted, module="repro.systems.fixture")
        assert rules_of(findings) == ["R003", "R007"]

    def test_presentation_layers_are_exempt(self):
        for module in (
            "repro.net.__main__",
            "repro.obs.__main__",
            "repro.workloads.loadgen",
            "repro.perf",
            "tests.net.fixture",
        ):
            assert lint_source(self.FIXTURE, module=module) == [], module

    def test_obs_spans_do_not_trip_the_rule(self):
        clean = src(
            """
            from ..obs import trace as _trace

            def handle(event):
                with _trace.span("server.dispatch"):
                    started = _trace.now_ns()
                return started
            """
        )
        assert lint_source(clean, module="repro.net.fixture") == []

    def test_suppression(self):
        planted = src(
            """
            import time

            def debug_probe():
                print(time.monotonic())  # repro-lint: disable=R007
            """
        )
        assert lint_source(planted, module="repro.net.fixture") == []


# -- R008: codec/hash plugin discipline ---------------------------------------


class TestR008PluginDiscipline:
    FIXTURE = src(
        """
        import hashlib
        import zlib

        def pack(data):
            digest = hashlib.sha256(data).digest()
            return digest + zlib.compress(data)
        """
    )

    def test_direct_backend_calls_are_flagged_in_datared(self):
        findings = lint_source(self.FIXTURE, module="repro.datared.fixture")
        assert rules_of(findings) == ["R008"] * 2
        assert lines_of(findings, "R008") == [6, 7]

    def test_systems_package_is_covered_too(self):
        findings = lint_source(self.FIXTURE, module="repro.systems.fixture")
        assert "R008" in rules_of(findings)

    def test_registry_modules_are_exempt(self):
        for module in (
            "repro.datared.codecs",
            "repro.datared.compression",
            "repro.datared.hashing",
        ):
            assert lint_source(self.FIXTURE, module=module) == [], module

    def test_other_packages_are_not_policed(self):
        for module in ("repro.net.fixture", "repro.perf", "tests.datared.fixture"):
            assert "R008" not in rules_of(
                lint_source(self.FIXTURE, module=module)
            ), module

    def test_journal_checksums_stay_allowed(self):
        clean = src(
            """
            import zlib

            def checksum(record):
                return zlib.crc32(record) & 0xFFFFFFFF
            """
        )
        assert lint_source(clean, module="repro.datared.fixture") == []

    def test_optional_backends_are_flagged_by_prefix(self):
        planted = src(
            """
            import zstandard

            def squeeze(data):
                return zstandard.ZstdCompressor().compress(data)
            """
        )
        findings = lint_source(planted, module="repro.datared.fixture")
        assert rules_of(findings) == ["R008"]

    def test_registry_calls_are_clean(self):
        clean = src(
            """
            from . import codecs as _codecs

            def build(name):
                return _codecs.create_codec(name)
            """
        )
        assert lint_source(clean, module="repro.datared.fixture") == []

    def test_suppression(self):
        planted = src(
            """
            import zlib

            def legacy_probe(data):
                return zlib.compress(data)  # repro-lint: disable=R008
            """
        )
        assert lint_source(planted, module="repro.datared.fixture") == []


class TestMachinery:
    def test_syntax_error_becomes_a_finding(self):
        findings = lint_source("def broken(:\n", module="repro.net.fixture")
        assert rules_of(findings) == ["R000"]

    def test_rule_selection(self):
        findings = lint_source(
            TestR003Determinism.FIXTURE,
            module="repro.sim.fixture",
            rules=["R001"],
        )
        assert findings == []

    def test_finding_formatting_and_dict(self):
        finding = Finding("R001", "a.py", 3, 4, "message")
        assert finding.format() == "a.py:3:4: R001 message"
        assert finding.as_dict()["rule"] == "R001"

    def test_cli_json_report_and_exit_status(self, tmp_path, capsys):
        bad = tmp_path / "repro" / "net"
        bad.mkdir(parents=True)
        (bad / "racy.py").write_text(
            "import time\n\nasync def f():\n    time.sleep(1)\n"
        )
        report_path = tmp_path / "report.json"
        status = main([str(tmp_path), "--json", str(report_path)])
        assert status == 1
        report = json.loads(report_path.read_text())
        assert report["tool"] == "repro-lint"
        assert report["files_scanned"] == 1
        assert [entry["rule"] for entry in report["findings"]] == ["R001"]
        out = capsys.readouterr().out
        assert "R001" in out and "FAIL" in out

    def test_cli_clean_tree_exits_zero(self, tmp_path, capsys):
        (tmp_path / "ok.py").write_text("VALUE = 1\n")
        assert main([str(tmp_path)]) == 0
        assert "OK" in capsys.readouterr().out

    def test_cli_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in RULES:
            assert rule in out


# -- R009: engines come from the factory in the serving layer ----------------


class TestR009EngineFactory:
    FIXTURE = src(
        """
        from repro.datared.dedup import DedupEngine
        from repro.datared.sharded import ShardedDedupEngine

        def build_backend():
            return DedupEngine(num_buckets=1024)

        def build_cluster():
            return ShardedDedupEngine(4, num_buckets=1024)
        """
    )

    def test_direct_construction_flagged_in_net_and_systems(self):
        for module in ("repro.net.fixture", "repro.systems.fixture"):
            findings = lint_source(self.FIXTURE, module=module)
            assert rules_of(findings) == ["R009"] * 2, module
            assert lines_of(findings, "R009") == [6, 9], module

    def test_attribute_style_construction_is_flagged_too(self):
        fixture = src(
            """
            import repro.datared.dedup as dedup

            def build():
                return dedup.DedupEngine(num_buckets=64)
            """
        )
        findings = lint_source(fixture, module="repro.net.router_fixture")
        assert rules_of(findings) == ["R009"]

    def test_factory_module_is_exempt(self):
        assert lint_source(self.FIXTURE, module="repro.systems.factory") == []

    def test_other_packages_are_not_policed(self):
        for module in (
            "repro.datared.fixture",
            "repro.perf",
            "repro.analysis.fixture",
            "tests.systems.fixture",
        ):
            assert "R009" not in rules_of(
                lint_source(self.FIXTURE, module=module)
            ), module

    def test_non_engine_calls_stay_allowed(self):
        clean = src(
            """
            from repro.systems.factory import build_engine
            from repro.systems.config import SystemConfig

            def build():
                return build_engine(SystemConfig(shards=2))
            """
        )
        assert lint_source(clean, module="repro.net.fixture") == []

    def test_suppression_comment(self):
        suppressed = self.FIXTURE.replace(
            "return DedupEngine(num_buckets=1024)",
            "return DedupEngine(num_buckets=1024)  # repro-lint: disable=R009",
        )
        findings = lint_source(suppressed, module="repro.net.fixture")
        assert lines_of(findings, "R009") == [9]


class TestR010LockWaits:
    FIXTURE = src(
        """
        from repro.sync import DisciplinedLock

        class Waiter:
            def __init__(self):
                self.lock = DisciplinedLock("w-lock", rank=100)

            def nap(self):
                with self.lock:
                    time.sleep(0.1)

            def collect(self, future):
                with self.lock:
                    return future.result()

            def helper(self):  # repro-lint: holds self.lock
                return self.in_queue.get()

            def clean_lookup(self):
                with self.lock:
                    return self.table.get(1)

            def wait_outside(self, future):
                with self.lock:
                    pending = self.count
                return future.result() if pending else None
        """
    )

    def test_waits_under_lock_are_flagged(self):
        findings = lint_source(self.FIXTURE, module="repro.datared.fixture")
        assert rules_of(findings) == ["R010"] * 3
        assert lines_of(findings, "R010") == [10, 14, 17]

    def test_dict_get_and_unlocked_waits_stay_allowed(self):
        findings = lint_source(self.FIXTURE, module="repro.datared.fixture")
        flagged = lines_of(findings, "R010")
        assert 21 not in flagged  # dict .get under lock
        assert 26 not in flagged  # wait after the critical section

    def test_rule_scoped_to_repro_modules(self):
        findings = lint_source(self.FIXTURE, module="tests.datared.fixture")
        assert "R010" not in rules_of(findings)

    def test_suppression_comment(self):
        suppressed = self.FIXTURE.replace(
            "time.sleep(0.1)",
            "time.sleep(0.1)  # repro-lint: disable=R010",
        )
        findings = lint_source(suppressed, module="repro.datared.fixture")
        assert lines_of(findings, "R010") == [14, 17]


class TestR011LockRanks:
    FIXTURE = src(
        """
        from repro.sync import DisciplinedLock

        class Stack:
            def __init__(self):
                self.low = DisciplinedLock("fix-low", rank=10)
                self.high = DisciplinedLock("fix-high", rank=20)

            def inverted(self):
                with self.high:
                    with self.low:
                        return 1

            def ordered(self):
                with self.low:
                    with self.high:
                        return 1

            def reentrant(self):
                with self.low:
                    with self.low:
                        return 1
        """
    )

    def test_order_inversion_is_flagged(self):
        findings = lint_source(self.FIXTURE, module="repro.datared.fixture")
        assert rules_of(findings) == ["R011"]
        assert lines_of(findings, "R011") == [11]

    def test_declared_lock_order_names_resolve(self):
        fixture = src(
            """
            from repro.sync import DisciplinedLock

            class Stack:
                def __init__(self):
                    self.router = DisciplinedLock("sharded-router")
                    self.engine = DisciplinedLock("dedup-engine")

                def inverted(self):
                    with self.engine:
                        with self.router:
                            return 1
            """
        )
        findings = lint_source(fixture, module="repro.datared.fixture")
        assert rules_of(findings) == ["R011"]
        assert "sharded-router" in findings[0].message

    def test_unranked_constructor_is_flagged(self):
        fixture = src(
            """
            from repro.sync import DisciplinedLock

            def build():
                return DisciplinedLock("never-registered")
            """
        )
        findings = lint_source(fixture, module="repro.datared.fixture")
        assert rules_of(findings) == ["R011"]
        assert "LOCK_ORDER" in findings[0].message

    def test_explicit_rank_kwarg_satisfies_the_rule(self):
        fixture = src(
            """
            from repro.sync import DisciplinedLock

            def build():
                return DisciplinedLock("ad-hoc", rank=500)
            """
        )
        assert lint_source(fixture, module="repro.datared.fixture") == []

    def test_holds_annotation_contributes_held_rank(self):
        fixture = src(
            """
            from repro.sync import DisciplinedLock

            class Stack:
                def __init__(self):
                    self.low = DisciplinedLock("h-low", rank=10)
                    self.high = DisciplinedLock("h-high", rank=20)

                def helper(self):  # repro-lint: holds self.high
                    with self.low:
                        return 1
            """
        )
        findings = lint_source(fixture, module="repro.datared.fixture")
        assert rules_of(findings) == ["R011"]
        assert lines_of(findings, "R011") == [10]

    def test_lock_comment_binds_foreign_attribute(self):
        fixture = src(
            """
            from repro.sync import DisciplinedLock

            class Router:
                def __init__(self, shards):
                    self.lock = DisciplinedLock("c-router", rank=20)
                    self.shards = shards

                def sweep(self):
                    with self.lock:
                        for shard in self.shards:
                            with shard.lock:  # lock: c-engine  # repro-lint: disable=R011
                                pass
        """
        )
        # The annotation binds shard.lock to class 'c-engine'; without a
        # rank the nested acquisition cannot be order-checked, and the
        # explicit disable documents that.  Drop the disable and the
        # unranked class is invisible (no ctor) but rank checks resolve
        # once the class is ranked:
        findings = lint_source(fixture, module="repro.datared.fixture")
        assert "R011" not in rules_of(findings)

    def test_rule_scoped_to_repro_modules(self):
        findings = lint_source(self.FIXTURE, module="tests.datared.fixture")
        assert "R011" not in rules_of(findings)

    def test_suppression_comment(self):
        suppressed = self.FIXTURE.replace(
            "with self.low:\n                return 1",
            "with self.low:  # repro-lint: disable=R011\n                return 1",
            1,
        )
        findings = lint_source(suppressed, module="repro.datared.fixture")
        assert "R011" not in rules_of(findings)


# -- R012: engine lifecycle in the serving layer ------------------------------


class TestR012Lifecycle:
    FIXTURE = src(
        """
        from repro.systems.factory import build_engine

        def serve(config):
            engine = build_engine(config)
            engine.write(0, b"x")
        """
    )

    def test_detects_leaked_engine(self):
        findings = lint_source(self.FIXTURE, module="repro.net.fixture")
        assert rules_of(findings) == ["R012"]
        assert lines_of(findings, "R012") == [5]

    def test_detects_leaked_server_and_system(self):
        fixture = src(
            """
            def boot(system_cls, storage_cls):
                system = FidrSystem(config=None)
                server = StorageServer(system)
                server.handle(b"frame")
            """
        )
        findings = lint_source(fixture, module="repro.systems.fixture")
        assert rules_of(findings) == ["R012", "R012"]

    def test_with_block_discharges(self):
        clean = src(
            """
            def serve(config):
                engine = build_engine(config)
                with engine:
                    engine.write(0, b"x")
            """
        )
        assert lint_source(clean, module="repro.net.fixture") == []

    def test_close_call_discharges(self):
        clean = src(
            """
            def serve(config):
                engine = build_engine(config)
                try:
                    engine.write(0, b"x")
                finally:
                    engine.close()
            """
        )
        assert lint_source(clean, module="repro.net.fixture") == []

    def test_ownership_transfer_discharges(self):
        clean = src(
            """
            class Host:
                def __init__(self, config):
                    engine = build_engine(config)
                    self.engine = engine

            def make(config):
                engine = build_engine(config)
                return engine
            """
        )
        assert lint_source(clean, module="repro.systems.fixture") == []

    def test_rule_scoped_to_serving_layer(self):
        # The factory and tests construct-and-return by design.
        assert lint_source(self.FIXTURE, module="repro.datared.fixture") == []
        assert lint_source(self.FIXTURE, module="tests.net.fixture") == []

    def test_suppression(self):
        suppressed = self.FIXTURE.replace(
            "engine = build_engine(config)",
            "engine = build_engine(config)  # repro-lint: disable=R012",
        )
        assert lint_source(suppressed, module="repro.net.fixture") == []


# -- the acceptance bar: the real tree is lint-clean --------------------------


def test_repository_sources_are_lint_clean():
    findings, scanned = lint_paths([REPO / "src"])
    assert scanned > 80
    assert findings == [], "\n".join(f.format() for f in findings)


def test_repository_tests_are_lint_clean():
    findings, _ = lint_paths([REPO / "tests"])
    assert findings == [], "\n".join(f.format() for f in findings)

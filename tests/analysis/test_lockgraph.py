"""Whole-program lock-order analysis (``repro.analysis.lockgraph``).

Synthetic multi-module fixtures with a known A→B→A cycle, a
hold-while-blocking wait, an async acquire, and a clean ranked
hierarchy — plus the acceptance run over the real ``src/repro`` tree
(zero cycles, zero unranked lock classes) and the CLI/JSON surface
including observed-edge merging.
"""

from __future__ import annotations

import json
import textwrap

from repro.analysis.lockgraph import (
    analyze_paths,
    analyze_sources,
    load_observed,
    main,
)


def src(text: str) -> str:
    return textwrap.dedent(text)


def analyze_one(source: str, module: str = "repro.fixture", **kwargs):
    return analyze_sources({f"{module}.py": (module, src(source))}, **kwargs)


class TestStaticEdges:
    def test_nested_with_blocks_build_an_edge(self):
        report = analyze_one(
            """
            from repro.sync import DisciplinedLock

            class Stack:
                def __init__(self):
                    self.outer = DisciplinedLock("fix-outer", rank=1)
                    self.inner = DisciplinedLock("fix-inner", rank=2)

                def step(self):
                    with self.outer:
                        with self.inner:
                            return 1
            """
        )
        assert report.ok
        edges = {(e["held"], e["acquired"]) for e in report.edges}
        assert ("fix-outer", "fix-inner") in edges

    def test_holds_annotation_contributes_entry_held(self):
        report = analyze_one(
            """
            from repro.sync import DisciplinedLock

            class Stack:
                def __init__(self):
                    self.outer = DisciplinedLock("h-outer", rank=1)
                    self.inner = DisciplinedLock("h-inner", rank=2)

                def helper(self):  # repro-lint: holds self.outer
                    with self.inner:
                        return 1
            """
        )
        assert report.ok
        edges = {(e["held"], e["acquired"]) for e in report.edges}
        assert ("h-outer", "h-inner") in edges

    def test_lock_comment_binds_foreign_attribute(self):
        report = analyze_one(
            """
            from repro.sync import DisciplinedLock

            class Router:
                def __init__(self, shards):
                    self.lock = DisciplinedLock("r-router", rank=1)
                    self.shards = shards

                def sweep(self):
                    with self.lock:
                        for shard in self.shards:
                            with shard.lock:  # lock: r-engine
                                pass
            """
        )
        edges = {(e["held"], e["acquired"]) for e in report.edges}
        assert ("r-router", "r-engine") in edges

    def test_closure_handed_to_pool_does_not_inherit_lock_scope(self):
        # The scatter/gather pattern: a nested def handed to a pool
        # runs on a worker thread with an empty held set, so its
        # acquisitions must NOT create edges from the enclosing scope.
        # (A closure *called* directly under the lock would — and does —
        # create the edge through the call graph.)
        report = analyze_one(
            """
            from repro.sync import DisciplinedLock

            class Fanout:
                def __init__(self, shards, pool):
                    self.lock = DisciplinedLock("f-router", rank=1)
                    self.shards = shards
                    self.pool = pool

                def scatter_all(self):
                    with self.lock:
                        def scatter(shard):
                            with shard.lock:  # lock: f-engine
                                return 1
                        return self.pool.submit_all(scatter, self.shards)
            """
        )
        edges = {(e["held"], e["acquired"]) for e in report.edges}
        assert ("f-router", "f-engine") not in edges


class TestCycleDetection:
    CYCLIC = {
        "repro/m1.py": (
            "repro.m1",
            src(
                """
                from repro.sync import DisciplinedLock

                class One:
                    def __init__(self, other):
                        self.a = DisciplinedLock("cls-a", rank=1)
                        self.other = other

                    def forward(self):
                        with self.a:
                            self.other.backward_inner()
                """
            ),
        ),
        "repro/m2.py": (
            "repro.m2",
            src(
                """
                from repro.sync import DisciplinedLock

                class Two:
                    def __init__(self, one):
                        self.b = DisciplinedLock("cls-b", rank=2)
                        self.one = one

                    def backward_inner(self):
                        with self.b:
                            pass

                    def backward(self):
                        with self.b:
                            self.one.forward_inner()
                """
            ),
        ),
        "repro/m3.py": (
            "repro.m3",
            src(
                """
                from repro.sync import DisciplinedLock

                class Three:
                    def __init__(self):
                        self.a = DisciplinedLock("cls-a", rank=1)

                    def forward_inner(self):
                        with self.a:
                            pass
                """
            ),
        ),
    }

    def test_a_b_a_cycle_is_reported(self):
        report = analyze_sources(dict(self.CYCLIC))
        assert not report.ok
        assert report.cycles, "A->B->A must surface as a cycle"
        classes = set(report.cycles[0]["classes"])
        assert classes == {"cls-a", "cls-b"}
        # The b -> a direction also contradicts the ranks.
        assert any(
            v["held"] == "cls-b" and v["acquired"] == "cls-a"
            for v in report.rank_violations
        )

    def test_one_direction_alone_is_clean(self):
        forward_only = {
            key: value
            for key, value in self.CYCLIC.items()
            if key != "repro/m2.py"
        }
        # Keep Two.backward_inner resolvable but drop the inversion.
        forward_only["repro/m2.py"] = (
            "repro.m2",
            src(
                """
                from repro.sync import DisciplinedLock

                class Two:
                    def __init__(self):
                        self.b = DisciplinedLock("cls-b", rank=2)

                    def backward_inner(self):
                        with self.b:
                            pass
                """
            ),
        )
        report = analyze_sources(forward_only)
        assert report.ok, [c["message"] for c in report.cycles]
        assert not report.cycles


class TestBlockingWhileLocked:
    def test_direct_wait_under_lock_is_flagged(self):
        report = analyze_one(
            """
            import time
            from repro.sync import DisciplinedLock

            class Waiter:
                def __init__(self):
                    self.lock = DisciplinedLock("w-lock", rank=1)

                def nap(self):
                    with self.lock:
                        time.sleep(0.1)
            """
        )
        assert not report.ok
        assert len(report.blocking) == 1
        assert "time.sleep" in report.blocking[0]["message"]

    def test_transitive_wait_through_call_is_flagged(self):
        report = analyze_one(
            """
            from repro.sync import DisciplinedLock

            class Pool:
                def drain_queue(self):
                    return self.out_queue.get()

            class Holder:
                def __init__(self, pool):
                    self.lock = DisciplinedLock("t-lock", rank=1)
                    self.pool = pool

                def pump(self):
                    with self.lock:
                        return self.pool.drain_queue()
            """
        )
        assert not report.ok
        assert any(
            "drain_queue" in finding["message"]
            for finding in report.blocking
        )

    def test_blocking_ok_on_def_line_cuts_propagation(self):
        report = analyze_one(
            """
            from repro.sync import DisciplinedLock

            class Pool:
                def fan_map(self, fn, items):  # lockgraph: blocking-ok stage fns are lock-free
                    return [f.result() for f in self.submit_all(fn, items)]

            class Holder:
                def __init__(self, pool):
                    self.lock = DisciplinedLock("ok-lock", rank=1)
                    self.pool = pool

                def pump(self, items):
                    with self.lock:
                        return self.pool.fan_map(len, items)
            """
        )
        assert report.ok, [f["message"] for f in report.blocking]

    def test_future_result_under_lock_is_flagged(self):
        report = analyze_one(
            """
            from repro.sync import DisciplinedLock

            class Waiter:
                def __init__(self):
                    self.lock = DisciplinedLock("fr-lock", rank=1)

                def collect(self, futures):
                    with self.lock:
                        return [future.result() for future in futures]
            """
        )
        assert not report.ok
        assert any(
            ".result" in finding["wait"] for finding in report.blocking
        )


class TestAsyncAcquire:
    def test_lock_acquired_inside_async_def_is_flagged(self):
        report = analyze_one(
            """
            from repro.sync import DisciplinedLock

            class Server:
                def __init__(self):
                    self.lock = DisciplinedLock("a-lock", rank=1)

                async def handle(self):
                    with self.lock:
                        return 1
            """
        )
        assert not report.ok
        assert len(report.async_acquires) == 1
        assert "async" in report.async_acquires[0]["message"]

    def test_async_ok_annotation_sanctions_the_site(self):
        report = analyze_one(
            """
            from repro.sync import DisciplinedLock

            class Server:
                def __init__(self):
                    self.lock = DisciplinedLock("a-ok", rank=1)

                async def handle(self):
                    with self.lock:  # lockgraph: async-ok single-threaded mode
                        return 1
            """
        )
        assert report.ok, [f["message"] for f in report.async_acquires]

    def test_transitive_acquire_from_async_is_flagged(self):
        report = analyze_one(
            """
            from repro.sync import DisciplinedLock

            class Engine:
                def __init__(self):
                    self.lock = DisciplinedLock("ta-lock", rank=1)

                def apply_frame(self):
                    with self.lock:
                        return 1

            class Server:
                def __init__(self, engine):
                    self.engine = engine

                async def dispatch(self):
                    return self.engine.apply_frame()
            """
        )
        assert not report.ok
        assert any(
            "apply_frame" in finding["message"]
            for finding in report.async_acquires
        )


class TestHierarchyChecks:
    def test_clean_ranked_hierarchy_passes(self):
        report = analyze_one(
            """
            from repro.sync import DisciplinedLock

            class Stack:
                def __init__(self):
                    self.router = DisciplinedLock("ok-router", rank=10)
                    self.engine = DisciplinedLock("ok-engine", rank=20)
                    self.seal = DisciplinedLock("ok-seal", rank=30)

                def descend(self):
                    with self.router:
                        with self.engine:
                            with self.seal:
                                return 1
            """
        )
        assert report.ok
        assert len(report.edges) == 3  # router->engine/seal, engine->seal
        assert report.lock_classes["ok-router"]["rank"] == 10

    def test_rank_inversion_is_reported(self):
        report = analyze_one(
            """
            from repro.sync import DisciplinedLock

            class Stack:
                def __init__(self):
                    self.low = DisciplinedLock("ri-low", rank=10)
                    self.high = DisciplinedLock("ri-high", rank=20)

                def inverted(self):
                    with self.high:
                        with self.low:
                            return 1
            """
        )
        assert not report.ok
        assert len(report.rank_violations) == 1
        violation = report.rank_violations[0]
        assert violation["held"] == "ri-high"
        assert violation["acquired"] == "ri-low"

    def test_unranked_lock_class_is_reported(self):
        report = analyze_one(
            """
            from repro.sync import DisciplinedLock

            class Stack:
                def __init__(self):
                    self.mystery = DisciplinedLock("no-rank-here")
            """
        )
        assert not report.ok
        assert len(report.unranked) == 1
        assert report.unranked[0]["class"] == "no-rank-here"


class TestObservedMerge:
    def test_observed_edges_merge_and_close_cycles(self, tmp_path):
        dump = tmp_path / "lockdep.json"
        dump.write_text(
            json.dumps(
                {
                    "version": 1,
                    "tool": "lockdep",
                    "edges": [
                        {"held": "obs-b", "acquired": "obs-a", "count": 3}
                    ],
                    "violations": [],
                }
            )
        )
        observed = load_observed([str(dump)])
        report = analyze_one(
            """
            from repro.sync import DisciplinedLock

            class Stack:
                def __init__(self):
                    self.a = DisciplinedLock("obs-a", rank=1)
                    self.b = DisciplinedLock("obs-b", rank=2)

                def forward(self):
                    with self.a:
                        with self.b:
                            return 1
            """,
            observed_edges=observed,
        )
        # Static a->b plus observed b->a closes a cycle the static
        # pass alone could not see.
        assert not report.ok
        assert report.cycles
        sources = {edge["source"] for edge in report.edges}
        assert "static" in sources and "observed" in sources


class TestRealTree:
    def test_src_repro_has_no_cycles_and_no_unranked_locks(self):
        """The ISSUE-8 acceptance criterion."""
        report = analyze_paths(["src/repro"])
        assert report.cycles == []
        assert report.unranked == []
        assert report.parse_errors == []
        assert report.ok, (
            [f["message"] for f in report.blocking]
            + [f["message"] for f in report.async_acquires]
            + [f["message"] for f in report.rank_violations]
        )
        # The lock topology the stack is documented to have.
        assert set(report.lock_classes) == {
            "sharded-router",
            "dedup-engine",
            "shard-seal",
        }
        edges = {(e["held"], e["acquired"]) for e in report.edges}
        assert ("sharded-router", "dedup-engine") in edges

    def test_cli_json_artifact(self, tmp_path, capsys):
        out = tmp_path / "LOCKGRAPH_report.json"
        status = main(["src/repro", "--json", str(out)])
        assert status == 0
        text = capsys.readouterr().out
        assert "lockgraph: OK" in text
        payload = json.loads(out.read_text())
        assert payload["ok"] is True
        assert payload["tool"] == "lockgraph"
        assert payload["lock_order"]["dedup-engine"] == 20

    def test_cli_exit_code_on_findings(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text(
            src(
                """
                from repro.sync import DisciplinedLock

                UNRANKED = DisciplinedLock("cli-unranked")
                """
            )
        )
        status = main([str(bad)])
        assert status == 1
        assert "unranked" in capsys.readouterr().out

"""Tests for the ledger/index conservation checker.

The checker must pass on healthy engines and systems through every
lifecycle phase (mid-stream, post-flush, post-GC) and must *fail* on
seeded corruption of each family of law it asserts — otherwise a green
check proves nothing."""

from __future__ import annotations

import random

import pytest

from repro.analysis.invariants import (
    InvariantViolation,
    check_engine,
    check_system,
)
from repro.datared.chunking import BLOCK_SIZE
from repro.datared.dedup import DedupEngine

CHUNK = 4096
BLOCKS = CHUNK // BLOCK_SIZE


def exercised_engine(seed: int = 7) -> DedupEngine:
    rng = random.Random(seed)
    engine = DedupEngine(num_buckets=512)
    payloads = [
        rng.randbytes(CHUNK // 2) + bytes(CHUNK // 2) for _ in range(5)
    ]
    for _ in range(150):  # duplicates and overwrites in a small region
        engine.write(
            rng.randrange(24) * BLOCKS, payloads[rng.randrange(len(payloads))]
        )
    return engine


class TestHealthyStates:
    def test_fresh_engine_is_clean(self):
        assert check_engine(DedupEngine(num_buckets=64)) == []

    def test_exercised_engine_is_clean_through_lifecycle(self):
        engine = exercised_engine()
        assert check_engine(engine) == []  # mid-stream, container open
        engine.flush()
        assert check_engine(engine) == []
        engine.collect_garbage(0.2)
        assert check_engine(engine) == []

    @pytest.mark.parametrize("kind_name", ["FIDR", "BASELINE"])
    def test_systems_are_clean_with_pending_writes(self, kind_name):
        from repro.systems.config import SystemConfig
        from repro.systems.server import StorageServer, SystemKind

        storage = StorageServer.build(
            SystemKind[kind_name],
            num_buckets=512,
            cache_lines=64,
            config=SystemConfig(batch_chunks=8),
        )
        rng = random.Random(3)
        for _ in range(20):  # 20 % 8 != 0: leaves a partial pending batch
            storage.write(rng.randrange(16), rng.randbytes(CHUNK))
        assert check_system(storage.system) == []  # staged bytes accounted
        storage.flush()
        assert check_system(storage.system) == []


class TestSeededCorruption:
    def test_reverse_index_corruption_is_caught(self):
        engine = exercised_engine()
        engine.pbn_map._by_fingerprint.clear()
        with pytest.raises(InvariantViolation, match="fingerprint index"):
            check_engine(engine)

    def test_stats_corruption_is_caught(self):
        engine = exercised_engine()
        engine.stats.logical_bytes += 1
        violations = check_engine(engine, raise_on_violation=False)
        assert any("logical_bytes" in violation for violation in violations)

    def test_dangling_lba_mapping_is_caught(self):
        engine = exercised_engine()
        engine.lba_map.set(10_000 * BLOCKS, 999_999)  # PBN that never existed
        violations = check_engine(engine, raise_on_violation=False)
        assert any("dead PBN" in violation for violation in violations)

    def test_refcount_drift_is_caught(self):
        engine = exercised_engine()
        pbn, _ = next(iter(engine.pbn_map.records()))
        engine.pbn_map.ref(pbn)  # refcount no longer matches the LBA map
        violations = check_engine(engine, raise_on_violation=False)
        assert any("refcount" in violation for violation in violations)

    def test_table_population_drift_is_caught(self):
        engine = exercised_engine()
        record = next(iter(engine.pbn_map.records()))[1]
        engine.table.remove(record.fingerprint)
        violations = check_engine(engine, raise_on_violation=False)
        assert any("entry count" in violation for violation in violations)

    def test_system_front_door_drift_is_caught(self):
        from repro.systems.server import StorageServer, SystemKind

        storage = StorageServer.build(SystemKind.BASELINE, num_buckets=256)
        storage.write(0, bytes(CHUNK))
        storage.system.logical_write_bytes += 1
        with pytest.raises(InvariantViolation, match="logical_write_bytes"):
            check_system(storage.system)

    def test_violation_message_lists_every_law_broken(self):
        engine = exercised_engine()
        engine.pbn_map._by_fingerprint.clear()
        engine.stats.logical_bytes += 1
        try:
            check_engine(engine)
        except InvariantViolation as error:
            message = str(error)
            assert "invariant violation(s)" in message
            assert "fingerprint index" in message
            assert "logical_bytes" in message
        else:  # pragma: no cover
            pytest.fail("corruption not detected")

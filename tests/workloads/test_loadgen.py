"""Tests for the concurrent load generator."""

import pytest

from repro.datared.compression import ModeledCompressor
from repro.systems.server import StorageServer, SystemKind
from repro.workloads.loadgen import LoadGenConfig, LoadGenResult, run_against


def build_storage():
    return StorageServer.build(
        SystemKind.FIDR, num_buckets=1024, cache_lines=64,
        compressor=ModeledCompressor(0.5),
    )


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            LoadGenConfig(clients=0)
        with pytest.raises(ValueError):
            LoadGenConfig(read_fraction=1.5)
        with pytest.raises(ValueError):
            LoadGenConfig(lbas_per_client=2, chunks_per_op=4)


class TestResultMath:
    def test_percentiles_and_rates(self):
        result = LoadGenResult(
            clients=1, total_ops=4, read_ops=2, write_ops=2,
            verified_reads=2, elapsed_s=2.0,
            bytes_written=1_000_000, bytes_read=1_000_000,
            latencies_ms=[1.0, 2.0, 3.0, 4.0],
        )
        assert result.throughput_ops == 2.0
        assert result.throughput_mb_s == 1.0
        assert result.p50_ms == 3.0
        assert result.p99_ms == 4.0
        assert "p50/p99" in result.render()

    def test_empty_result_degrades(self):
        result = LoadGenResult(
            clients=1, total_ops=0, read_ops=0, write_ops=0,
            verified_reads=0, elapsed_s=0.0, bytes_written=0, bytes_read=0,
        )
        assert result.throughput_ops == 0.0
        assert result.p99_ms == 0.0


class TestEndToEnd:
    def test_eight_concurrent_clients_mixed_workload(self):
        """The acceptance criterion: >= 8 clients, mixed read/write,
        byte-exact read-back, throughput + percentile reporting."""
        config = LoadGenConfig(
            clients=8, ops_per_client=25, read_fraction=0.5, seed=7
        )
        result = run_against(build_storage(), config, workers=3)
        assert result.clients == 8
        assert result.total_ops == 8 * 25
        assert result.read_ops > 0 and result.write_ops > 0
        assert result.verified_reads == result.read_ops
        assert result.throughput_ops > 0
        assert result.p99_ms >= result.p50_ms > 0

    def test_multi_chunk_operations(self):
        config = LoadGenConfig(
            clients=4, ops_per_client=12, chunks_per_op=3,
            lbas_per_client=8, seed=3,
        )
        result = run_against(build_storage(), config)
        assert result.verified_reads == result.read_ops
        storage_bytes = result.bytes_written
        assert storage_bytes % (3 * 4096) == 0

    def test_deterministic_given_seed(self):
        config = LoadGenConfig(clients=3, ops_per_client=10, seed=42)
        first = run_against(build_storage(), config)
        second = run_against(build_storage(), config)
        assert (first.read_ops, first.write_ops) == (
            second.read_ops, second.write_ops
        )
        assert first.verified_reads == first.read_ops

    def test_write_only_mix(self):
        config = LoadGenConfig(clients=2, ops_per_client=10, read_fraction=0.0)
        result = run_against(build_storage(), config)
        assert result.read_ops == 0
        assert result.write_ops == 20

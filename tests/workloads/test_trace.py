"""Tests for trace structures and transforms."""

import pytest

from repro.workloads.trace import IoRequest, OpKind, Trace


def write(lba, content):
    return IoRequest(OpKind.WRITE, lba, content)


class TestIoRequest:
    def test_validation(self):
        with pytest.raises(ValueError):
            IoRequest("X", 0)
        with pytest.raises(ValueError):
            IoRequest(OpKind.READ, -1)


class TestTrace:
    def test_counts(self):
        trace = Trace("t", [write(0, 1), IoRequest(OpKind.READ, 0)])
        assert len(trace) == 2
        assert trace.write_count == 1
        assert trace.read_count == 1

    def test_content_dedup_ratio(self):
        trace = Trace("t", [write(0, 1), write(1, 1), write(2, 2), write(3, 1)])
        # contents: 1 new, 1 dup, 2 new, 1 dup -> 2 dups of 4 writes.
        assert trace.content_dedup_ratio() == pytest.approx(0.5)

    def test_dedup_ignores_reads(self):
        trace = Trace("t", [write(0, 1), IoRequest(OpKind.READ, 0), write(1, 1)])
        assert trace.content_dedup_ratio() == pytest.approx(0.5)

    def test_address_footprint(self):
        trace = Trace("t", [write(0, 1), write(0, 2), write(5, 3)])
        assert trace.address_footprint() == 2

    def test_writes_iterator(self):
        trace = Trace("t", [write(0, 1), IoRequest(OpKind.READ, 9), write(2, 3)])
        assert list(trace.writes()) == [(0, 1), (2, 3)]

    def test_empty_dedup_ratio(self):
        assert Trace("t").content_dedup_ratio() == 0.0


class TestSerialization:
    def test_roundtrip(self):
        trace = Trace("demo", [write(1, 2), IoRequest(OpKind.READ, 3)])
        restored = Trace.loads(trace.dumps())
        assert restored.name == "demo"
        assert restored.requests == trace.requests

    def test_file_roundtrip(self, tmp_path):
        trace = Trace("file-demo", [write(i, i) for i in range(10)])
        path = str(tmp_path / "trace.txt")
        trace.save(path)
        assert Trace.load(path).requests == trace.requests

    def test_loads_skips_comments_and_blanks(self):
        text = "# comment\n\nW 1 2\n# more\nR 3 0\n"
        trace = Trace.loads(text)
        assert len(trace) == 2


class TestReplicate:
    def test_content_offsets_kill_cross_replica_dedup(self):
        base = Trace("b", [write(0, 1), write(1, 1)])  # 50% dedup
        combined = base.replicate(3)
        assert combined.content_dedup_ratio() == pytest.approx(0.5)
        assert len(combined) == 6

    def test_lba_stride_separates_address_spaces(self):
        base = Trace("b", [write(0, 1), write(1, 2)])
        combined = base.replicate(2, lba_stride=100)
        lbas = [request.lba for request in combined.requests]
        assert lbas == [0, 1, 100, 101]

    def test_zero_stride_replays_same_lbas(self):
        base = Trace("b", [write(5, 1)])
        combined = base.replicate(2)
        assert [r.lba for r in combined.requests] == [5, 5]

    def test_reads_keep_lba_offset_only(self):
        base = Trace("b", [IoRequest(OpKind.READ, 7)])
        combined = base.replicate(2, lba_stride=10)
        assert [r.lba for r in combined.requests] == [7, 17]

    def test_validation(self):
        with pytest.raises(ValueError):
            Trace("b").replicate(0)

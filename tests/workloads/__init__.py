"""Test package."""

"""Tests for the workload command-line tool."""

import pytest

from repro.workloads.__main__ import main
from repro.workloads.trace import Trace


class TestList:
    def test_lists_workloads(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "write-h" in out
        assert "mail" in out


class TestGen:
    def test_workload_generation(self, tmp_path, capsys):
        path = str(tmp_path / "trace.txt")
        assert main(["gen", "--workload", "write-h", "--chunks", "2000",
                     "-o", path]) == 0
        trace = Trace.load(path)
        assert len(trace) == 2000
        assert trace.content_dedup_ratio() == pytest.approx(0.88, abs=0.04)

    def test_profile_generation(self, tmp_path):
        path = str(tmp_path / "mail.txt")
        assert main(["gen", "--profile", "mail", "--writes", "1000",
                     "-o", path]) == 0
        assert Trace.load(path).write_count == 1000

    def test_unknown_workload_errors(self, tmp_path, capsys):
        assert main(["gen", "--workload", "nope",
                     "-o", str(tmp_path / "x")]) == 2
        assert "unknown workload" in capsys.readouterr().err

    def test_missing_source_errors(self, tmp_path):
        assert main(["gen", "-o", str(tmp_path / "x")]) == 2

    def test_read_mixed_contains_reads(self, tmp_path):
        path = str(tmp_path / "rm.txt")
        main(["gen", "--workload", "read-mixed", "--chunks", "2000",
              "-o", path])
        trace = Trace.load(path)
        assert trace.read_count > 0


class TestInspect:
    def test_summary_roundtrip(self, tmp_path, capsys):
        path = str(tmp_path / "t.txt")
        main(["gen", "--workload", "write-l", "--chunks", "1000", "-o", path])
        capsys.readouterr()
        assert main(["inspect", path]) == 0
        out = capsys.readouterr().out
        assert "content dedup ratio" in out
        assert "1,000" in out

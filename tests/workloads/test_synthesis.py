"""Tests for content generation, trace synthesis, and workload building."""


import pytest

from repro.workloads.content import ContentFactory
from repro.workloads.generator import WORKLOADS, build_workload, cache_sizing
from repro.workloads.synthetic import (
    MAIL_PROFILE,
    WEBVM_PROFILE,
    TraceProfile,
    synthesize,
)


class TestContentFactory:
    def test_deterministic(self):
        factory = ContentFactory()
        assert factory.chunk(42) == factory.chunk(42)
        assert factory.chunk(42) == ContentFactory().chunk(42)

    def test_distinct_ids_distinct_content(self):
        factory = ContentFactory()
        assert factory.chunk(1) != factory.chunk(2)

    def test_size(self):
        assert len(ContentFactory(chunk_size=4096).chunk(0)) == 4096

    def test_compressibility_near_target(self):
        factory = ContentFactory(compress_fraction=0.5)
        ratios = [factory.measured_ratio(i) for i in range(20)]
        mean = sum(ratios) / len(ratios)
        assert 0.45 < mean < 0.58

    def test_other_targets(self):
        for target in (0.25, 0.75):
            factory = ContentFactory(compress_fraction=target)
            ratio = factory.measured_ratio(0)
            assert ratio == pytest.approx(target, abs=0.08)

    def test_cache_does_not_change_results(self):
        factory = ContentFactory(cache_entries=2)
        first = factory.chunk(1)
        factory.chunk(2)
        factory.chunk(3)  # evicts 1 from the memo
        assert factory.chunk(1) == first

    def test_validation(self):
        with pytest.raises(ValueError):
            ContentFactory(chunk_size=10)
        with pytest.raises(ValueError):
            ContentFactory(compress_fraction=0.0)


class TestSynthesize:
    def test_length(self):
        trace = synthesize(MAIL_PROFILE, 1000, seed=1)
        assert len(trace) == 1000

    def test_deterministic_in_seed(self):
        a = synthesize(MAIL_PROFILE, 500, seed=7)
        b = synthesize(MAIL_PROFILE, 500, seed=7)
        assert a.requests == b.requests

    def test_seed_changes_trace(self):
        a = synthesize(MAIL_PROFILE, 500, seed=1)
        b = synthesize(MAIL_PROFILE, 500, seed=2)
        assert a.requests != b.requests

    def test_dedup_ratio_tracks_target(self):
        for profile in (MAIL_PROFILE, WEBVM_PROFILE):
            trace = synthesize(profile, 12_000, seed=3)
            assert trace.content_dedup_ratio() == pytest.approx(
                profile.dedup_target, abs=0.02
            )

    def test_lbas_within_address_space(self):
        trace = synthesize(MAIL_PROFILE, 2000, seed=4)
        assert all(
            0 <= request.lba < MAIL_PROFILE.address_blocks
            for request in trace.requests
        )

    def test_webvm_runs_longer_than_mail(self):
        def mean_run(trace):
            runs, current = [], 1
            requests = trace.requests
            for previous, request in zip(requests, requests[1:]):
                if request.lba == previous.lba + 1:
                    current += 1
                else:
                    runs.append(current)
                    current = 1
            runs.append(current)
            return sum(runs) / len(runs)

        mail = synthesize(MAIL_PROFILE, 5000, seed=5)
        webvm = synthesize(WEBVM_PROFILE, 5000, seed=5)
        assert mean_run(webvm) > mean_run(mail)

    def test_profile_validation(self):
        with pytest.raises(ValueError):
            TraceProfile("bad", 1.0, 10, 0.5, 100, 1, 4, 0.5)  # dedup = 1
        with pytest.raises(ValueError):
            TraceProfile("bad", 0.5, 0, 0.5, 100, 1, 4, 0.5)  # window 0
        with pytest.raises(ValueError):
            synthesize(MAIL_PROFILE, 0)


class TestBuildWorkload:
    def test_write_only_volume(self):
        trace = build_workload(WORKLOADS["write-h"], num_chunks=4000, replicas=2)
        assert trace.write_count == 4000
        assert trace.read_count == 0

    def test_read_mixed_is_half_reads(self):
        trace = build_workload(WORKLOADS["read-mixed"], num_chunks=4000, replicas=2)
        assert trace.read_count == pytest.approx(trace.write_count, rel=0.05)

    def test_reads_target_written_lbas(self):
        trace = build_workload(WORKLOADS["read-mixed"], num_chunks=2000, replicas=2)
        written = set()
        for request in trace.requests:
            if request.op == "W":
                written.add(request.lba)
            else:
                assert request.lba in written

    def test_dedup_matches_spec(self):
        for key in ("write-h", "write-m", "write-l"):
            spec = WORKLOADS[key]
            trace = build_workload(spec, num_chunks=8000, replicas=2, seed=2)
            assert trace.content_dedup_ratio() == pytest.approx(
                spec.dedup_target, abs=0.025
            )

    def test_replicas_use_disjoint_lba_ranges(self):
        spec = WORKLOADS["write-h"]
        trace = build_workload(spec, num_chunks=2000, replicas=2)
        half = len(trace.requests) // 2
        first = {r.lba for r in trace.requests[:half]}
        second = {r.lba for r in trace.requests[half:]}
        assert not (first & second)

    def test_validation(self):
        with pytest.raises(ValueError):
            build_workload(WORKLOADS["write-h"], num_chunks=1, replicas=2)


class TestCacheSizing:
    def test_paper_scale(self):
        sizing = cache_sizing(unique_stored_bytes=500e9, cache_fraction=0.028)
        # 500 GB stored at 50% compression = 1 TB unique logical.
        assert sizing["table_bytes"] > 8e9  # multi-GB table
        assert sizing["cache_bytes"] == pytest.approx(
            sizing["table_bytes"] * 0.028, rel=0.01
        )

    def test_fields_consistent(self):
        sizing = cache_sizing()
        assert sizing["cache_lines"] <= sizing["num_buckets"]
        assert sizing["cache_lines"] >= 1

"""Tests for the trace replay driver."""

import pytest

from repro.datared.compression import ModeledCompressor
from repro.systems.fidr import FidrSystem
from repro.workloads.content import ContentFactory
from repro.workloads.generator import WORKLOADS, build_workload
from repro.workloads.runner import replay
from repro.workloads.trace import IoRequest, OpKind, Trace


def small_system():
    return FidrSystem(
        num_buckets=1024, cache_lines=64, compressor=ModeledCompressor(0.5)
    )


class TestReplay:
    def test_counts_and_report(self):
        trace = Trace("t", [
            IoRequest(OpKind.WRITE, 0, 1),
            IoRequest(OpKind.WRITE, 1, 1),
            IoRequest(OpKind.READ, 0),
        ])
        result = replay(small_system(), trace)
        assert result.writes == 2
        assert result.reads == 1
        assert result.measured_dedup == pytest.approx(0.5)
        assert result.report.logical_write_bytes == 2 * 4096

    def test_same_content_id_deduplicates(self):
        trace = Trace("t", [IoRequest(OpKind.WRITE, lba, 7) for lba in range(10)])
        result = replay(small_system(), trace)
        assert result.report.reduction.unique_chunks == 1
        assert result.report.reduction.duplicate_chunks == 9

    def test_chunk_size_mismatch_rejected(self):
        factory = ContentFactory(chunk_size=8192)
        with pytest.raises(ValueError):
            replay(small_system(), Trace("t"), factory=factory)

    def test_flush_optional(self):
        trace = Trace("t", [IoRequest(OpKind.WRITE, 0, 1)])
        system = small_system()
        replay(system, trace, flush=False)
        assert system.engine.containers.sealed_count == 0

    def test_workload_replay_measures_spec_targets(self):
        spec = WORKLOADS["write-h"]
        trace = build_workload(spec, num_chunks=6000, replicas=2, seed=1)
        result = replay(small_system(), trace)
        assert result.measured_dedup == pytest.approx(spec.dedup_target, abs=0.03)
        assert result.measured_comp_ratio == pytest.approx(0.5, abs=0.02)

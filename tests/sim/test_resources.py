"""Tests for simulation resources (semaphore, store, bandwidth pipe)."""

import pytest

from repro.sim.core import SimulationError
from repro.sim.resources import BandwidthPipe, Resource, Store


class TestResource:
    def test_grants_up_to_capacity(self, sim):
        resource = Resource(sim, capacity=2)
        first = resource.acquire()
        second = resource.acquire()
        third = resource.acquire()
        assert first.triggered and second.triggered
        assert not third.triggered
        assert resource.queue_length == 1

    def test_release_wakes_fifo(self, sim):
        resource = Resource(sim, capacity=1)
        resource.acquire()
        waiter_a = resource.acquire()
        waiter_b = resource.acquire()
        resource.release()
        assert waiter_a.triggered
        assert not waiter_b.triggered

    def test_release_without_acquire_rejected(self, sim):
        resource = Resource(sim)
        with pytest.raises(SimulationError):
            resource.release()

    def test_capacity_validation(self, sim):
        with pytest.raises(SimulationError):
            Resource(sim, capacity=0)

    def test_mutual_exclusion_in_processes(self, sim):
        resource = Resource(sim, capacity=1)
        log = []

        def worker(name, hold):
            yield resource.acquire()
            start = sim.now
            yield sim.timeout(hold)
            log.append((name, start, sim.now))
            resource.release()

        sim.spawn(worker("a", 2))
        sim.spawn(worker("b", 3))
        sim.run()
        assert log == [("a", 0, 2), ("b", 2, 5)]


class TestStore:
    def test_put_then_get(self, sim):
        store = Store(sim)
        store.put("item")
        got = store.get()
        assert got.triggered and got.value == "item"

    def test_get_blocks_until_put(self, sim):
        store = Store(sim)
        got = store.get()
        assert not got.triggered
        store.put("late")
        assert got.triggered and got.value == "late"

    def test_fifo_ordering(self, sim):
        store = Store(sim)
        for item in (1, 2, 3):
            store.put(item)
        values = [store.get().value for _ in range(3)]
        assert values == [1, 2, 3]

    def test_bounded_put_blocks(self, sim):
        store = Store(sim, capacity=1)
        first = store.put("a")
        second = store.put("b")
        assert first.triggered
        assert not second.triggered
        got = store.get()
        assert got.value == "a"
        assert second.triggered
        assert store.get().value == "b"

    def test_handoff_to_waiting_getter(self, sim):
        store = Store(sim, capacity=1)
        got = store.get()
        store.put("direct")
        assert got.value == "direct"
        assert len(store) == 0

    def test_capacity_validation(self, sim):
        with pytest.raises(SimulationError):
            Store(sim, capacity=0)


class TestBandwidthPipe:
    def test_single_transfer_time(self, sim):
        pipe = BandwidthPipe(sim, rate_bytes_per_s=100.0)
        done = []
        pipe.transfer(50).add_callback(lambda e: done.append(sim.now))
        sim.run()
        assert done == [pytest.approx(0.5)]

    def test_fair_sharing_halves_rate(self, sim):
        pipe = BandwidthPipe(sim, 100.0)
        finish = []
        pipe.transfer(100).add_callback(lambda e: finish.append(sim.now))
        pipe.transfer(100).add_callback(lambda e: finish.append(sim.now))
        sim.run()
        # Two equal transfers sharing 100 B/s finish together at 2 s.
        assert finish == [pytest.approx(2.0), pytest.approx(2.0)]

    def test_late_joiner_slows_first(self, sim):
        pipe = BandwidthPipe(sim, 100.0)
        finish = {}
        pipe.transfer(100).add_callback(lambda e: finish.setdefault("big", sim.now))

        def join_later():
            yield sim.timeout(0.5)
            done = pipe.transfer(25)
            yield done
            finish["small"] = sim.now

        sim.spawn(join_later())
        sim.run()
        # First half-second: 50 bytes of the big transfer done.  Shared
        # phase at 50 B/s each: small's 25 bytes finish at 1.0 (big now
        # has 25 left); big finishes solo at 100 B/s -> 1.25.
        assert finish["small"] == pytest.approx(1.0)
        assert finish["big"] == pytest.approx(1.25)

    def test_zero_byte_transfer_completes_instantly(self, sim):
        pipe = BandwidthPipe(sim, 10.0)
        done = pipe.transfer(0)
        assert done.triggered

    def test_negative_transfer_rejected(self, sim):
        pipe = BandwidthPipe(sim, 10.0)
        with pytest.raises(SimulationError):
            pipe.transfer(-1)

    def test_rate_validation(self, sim):
        with pytest.raises(SimulationError):
            BandwidthPipe(sim, 0)

    def test_bytes_accounted(self, sim):
        pipe = BandwidthPipe(sim, 10.0)
        pipe.transfer(30)
        pipe.transfer(20)
        sim.run()
        assert pipe.bytes_transferred == 50

    def test_utilization_tracks_busy_time(self, sim):
        pipe = BandwidthPipe(sim, 100.0)

        def usage():
            yield pipe.transfer(100)  # busy 0..1
            yield sim.timeout(1.0)  # idle 1..2
            yield pipe.transfer(100)  # busy 2..3

        sim.spawn(usage())
        sim.run()
        assert sim.now == pytest.approx(3.0)
        assert pipe.utilization() == pytest.approx(2.0 / 3.0)

    def test_many_concurrent_transfers_conserve_throughput(self, sim):
        pipe = BandwidthPipe(sim, 1000.0)
        finish = []
        for _ in range(10):
            pipe.transfer(100).add_callback(lambda e: finish.append(sim.now))
        sim.run()
        # 1000 bytes total at 1000 B/s: everything done at 1 s.
        assert all(t == pytest.approx(1.0) for t in finish)


class TestBandwidthPipeChurn:
    """Regression tests for the marker-storm bug: heavy join/leave churn
    once degenerated into sub-nanosecond sweep loops (stale completion
    markers each spawning a fresh one)."""

    def test_windowed_pipeline_churn_terminates_quickly(self, sim):
        pipes = [
            BandwidthPipe(sim, rate, f"stage{i}")
            for i, rate in enumerate((170e9, 48e9, 128e9, 43e9))
        ]
        demands = [2e6, 2e6, 5e5, 2.5e5]
        window = {"slots": 4, "waiters": []}
        completed = []

        def batch():
            for pipe, demand in zip(pipes, demands):
                yield pipe.transfer(demand)
            completed.append(sim.now)
            window["slots"] += 1
            if window["waiters"]:
                window["waiters"].pop(0).succeed(None)

        def generator():
            for _ in range(100):
                if window["slots"] == 0:
                    gate = sim.event()
                    window["waiters"].append(gate)
                    yield gate
                window["slots"] -= 1
                sim.spawn(batch())
                yield sim.timeout(0.0)

        sim.spawn(generator())
        sim.run()
        assert len(completed) == 100
        # The event count must stay linear in the work, not explode.
        assert sim.events_processed < 10_000

    def test_epoch_invalidates_stale_markers(self, sim):
        pipe = BandwidthPipe(sim, 100.0)
        finish = []
        # Start a transfer, then join another at a fractional time so the
        # original completion marker goes stale.
        pipe.transfer(100).add_callback(lambda e: finish.append(("a", sim.now)))

        def joiner():
            yield sim.timeout(0.25)
            yield pipe.transfer(10)
            finish.append(("b", sim.now))

        sim.spawn(joiner())
        sim.run()
        assert dict(finish)["b"] == pytest.approx(0.45)
        # a: 25 bytes solo (0.25s), 10 bytes shared while b active
        # (0.2s, 50 B/s), 65 bytes solo (0.65s) -> 1.10s.
        assert dict(finish)["a"] == pytest.approx(1.10)
        assert pipe.active_transfers == 0

    def test_many_equal_transfers_complete_in_one_sweep(self, sim):
        pipe = BandwidthPipe(sim, 100.0)
        done = []
        for _ in range(50):
            pipe.transfer(10).add_callback(lambda e: done.append(sim.now))
        sim.run()
        assert len(done) == 50
        assert all(t == pytest.approx(5.0) for t in done)

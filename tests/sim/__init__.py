"""Test package."""

"""Tests for the discrete-event kernel."""

import pytest

from repro.sim.core import Interrupt, SimulationError


class TestEvent:
    def test_starts_pending(self, sim):
        event = sim.event()
        assert not event.triggered
        assert not event.processed

    def test_succeed_delivers_value(self, sim):
        event = sim.event()
        event.succeed(42)
        assert event.triggered
        assert event.value == 42

    def test_double_trigger_rejected(self, sim):
        event = sim.event()
        event.succeed()
        with pytest.raises(SimulationError):
            event.succeed()
        with pytest.raises(SimulationError):
            event.fail(RuntimeError("late"))

    def test_fail_requires_exception(self, sim):
        event = sim.event()
        with pytest.raises(SimulationError):
            event.fail("not an exception")

    def test_callback_after_processing_runs_immediately(self, sim):
        event = sim.event()
        event.succeed("x")
        sim.run()
        seen = []
        event.add_callback(lambda e: seen.append(e.value))
        assert seen == ["x"]


class TestTimeout:
    def test_fires_at_delay(self, sim):
        fired = []
        timeout = sim.timeout(3.5, value="done")
        timeout.add_callback(lambda e: fired.append((sim.now, e.value)))
        sim.run()
        assert fired == [(3.5, "done")]

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.timeout(-1)

    def test_ordering_among_timeouts(self, sim):
        order = []
        for delay in (5, 1, 3):
            sim.timeout(delay, value=delay).add_callback(
                lambda e: order.append(e.value)
            )
        sim.run()
        assert order == [1, 3, 5]

    def test_fifo_at_same_timestamp(self, sim):
        order = []
        for tag in ("a", "b", "c"):
            sim.timeout(1.0, value=tag).add_callback(
                lambda e: order.append(e.value)
            )
        sim.run()
        assert order == ["a", "b", "c"]


class TestProcess:
    def test_simple_sequence(self, sim):
        log = []

        def worker():
            yield sim.timeout(1)
            log.append(sim.now)
            yield sim.timeout(2)
            log.append(sim.now)

        sim.spawn(worker())
        sim.run()
        assert log == [1, 3]

    def test_return_value_becomes_event_value(self, sim):
        def worker():
            yield sim.timeout(1)
            return "result"

        process = sim.spawn(worker())
        sim.run()
        assert process.value == "result"

    def test_waiting_on_another_process(self, sim):
        def child():
            yield sim.timeout(2)
            return 7

        def parent():
            value = yield sim.spawn(child())
            return value * 2

        process = sim.spawn(parent())
        sim.run()
        assert process.value == 14
        assert sim.now == 2

    def test_yielding_generator_autospawns(self, sim):
        def child():
            yield sim.timeout(1)
            return "inner"

        def parent():
            value = yield child()
            return value

        process = sim.spawn(parent())
        sim.run()
        assert process.value == "inner"

    def test_failed_event_raises_inside_process(self, sim):
        event = sim.event()
        caught = []

        def worker():
            try:
                yield event
            except ValueError as error:
                caught.append(str(error))

        sim.spawn(worker())
        event.fail(ValueError("boom"))
        sim.run()
        assert caught == ["boom"]

    def test_yielding_non_event_is_error(self, sim):
        def worker():
            yield 42

        sim.spawn(worker())
        with pytest.raises(SimulationError):
            sim.run()

    def test_is_alive(self, sim):
        def worker():
            yield sim.timeout(5)

        process = sim.spawn(worker())
        assert process.is_alive
        sim.run()
        assert not process.is_alive


class TestInterrupt:
    def test_interrupt_wakes_process(self, sim):
        log = []

        def sleeper():
            try:
                yield sim.timeout(100)
            except Interrupt as interrupt:
                log.append((sim.now, interrupt.cause))

        process = sim.spawn(sleeper())

        def interrupter():
            yield sim.timeout(2)
            process.interrupt("wake up")

        sim.spawn(interrupter())
        sim.run()
        assert log == [(2, "wake up")]

    def test_unhandled_interrupt_fails_process(self, sim):
        def sleeper():
            yield sim.timeout(100)

        process = sim.spawn(sleeper())

        def interrupter():
            yield sim.timeout(1)
            process.interrupt()

        sim.spawn(interrupter())
        sim.run()
        assert process.triggered
        assert not process.ok

    def test_interrupt_finished_process_rejected(self, sim):
        def quick():
            yield sim.timeout(1)

        process = sim.spawn(quick())
        sim.run()
        with pytest.raises(SimulationError):
            process.interrupt()


class TestComposite:
    def test_all_of_collects_values(self, sim):
        events = [sim.timeout(d, value=d) for d in (3, 1, 2)]
        done = []
        sim.all_of(events).add_callback(lambda e: done.append((sim.now, e.value)))
        sim.run()
        assert done == [(3, [3, 1, 2])]

    def test_all_of_empty_succeeds_immediately(self, sim):
        event = sim.all_of([])
        assert event.triggered
        assert event.value == []

    def test_all_of_fails_fast(self, sim):
        bad = sim.event()
        slow = sim.timeout(10)
        combo = sim.all_of([bad, slow])
        bad.fail(RuntimeError("nope"))
        sim.run(until=1)
        assert combo.triggered
        assert not combo.ok

    def test_any_of_first_wins(self, sim):
        fast = sim.timeout(1, value="fast")
        slow = sim.timeout(5, value="slow")
        results = []
        sim.any_of([slow, fast]).add_callback(lambda e: results.append(e.value))
        sim.run()
        assert results[0][1] == "fast"

    def test_any_of_requires_events(self, sim):
        with pytest.raises(SimulationError):
            sim.any_of([])


class TestRun:
    def test_run_until_stops_the_clock(self, sim):
        fired = []
        sim.timeout(10).add_callback(lambda e: fired.append(sim.now))
        sim.run(until=5)
        assert sim.now == 5
        assert fired == []
        sim.run()
        assert fired == [10]

    def test_run_until_past_last_event_advances_clock(self, sim):
        sim.timeout(1)
        sim.run(until=100)
        assert sim.now == 100

    def test_events_processed_counter(self, sim):
        for _ in range(5):
            sim.timeout(1)
        sim.run()
        assert sim.events_processed == 5

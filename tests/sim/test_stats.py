"""Tests for the statistics accumulators."""


import pytest
from hypothesis import given, strategies as st

from repro.sim.stats import (
    Counter,
    Histogram,
    RateMeter,
    StreamingSummary,
    TimeWeighted,
)


class TestCounter:
    def test_add_and_get(self):
        counter = Counter()
        counter.add("reads", 3)
        counter.add("reads")
        assert counter.get("reads") == 4
        assert counter.get("writes") == 0

    def test_negative_rejected(self):
        counter = Counter()
        with pytest.raises(ValueError):
            counter.add("x", -1)

    def test_fractions_sum_to_one(self):
        counter = Counter()
        counter.add("a", 1)
        counter.add("b", 3)
        fractions = counter.fractions()
        assert fractions["a"] == pytest.approx(0.25)
        assert sum(fractions.values()) == pytest.approx(1.0)

    def test_empty_fractions(self):
        assert Counter().fractions() == {}

    def test_total(self):
        counter = Counter()
        counter.add("a", 2)
        counter.add("b", 5)
        assert counter.total() == 7


class TestTimeWeighted:
    def test_piecewise_average(self):
        signal = TimeWeighted()
        signal.record(2.0, 10.0)  # level 0 for [0,2)
        signal.record(4.0, 0.0)  # level 10 for [2,4)
        assert signal.average(4.0) == pytest.approx(5.0)

    def test_average_extends_current_level(self):
        signal = TimeWeighted(initial=4.0)
        assert signal.average(10.0) == pytest.approx(4.0)

    def test_peak(self):
        signal = TimeWeighted()
        signal.record(1.0, 7.0)
        signal.record(2.0, 3.0)
        assert signal.peak == 7.0

    def test_time_backwards_rejected(self):
        signal = TimeWeighted()
        signal.record(5.0, 1.0)
        with pytest.raises(ValueError):
            signal.record(4.0, 1.0)


class TestStreamingSummary:
    def test_mean_and_extremes(self):
        summary = StreamingSummary()
        summary.extend([1.0, 2.0, 3.0, 4.0])
        assert summary.mean == pytest.approx(2.5)
        assert summary.minimum == 1.0
        assert summary.maximum == 4.0

    def test_variance_matches_textbook(self):
        summary = StreamingSummary()
        summary.extend([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0])
        assert summary.stdev == pytest.approx(2.138, abs=1e-3)

    def test_empty_is_safe(self):
        summary = StreamingSummary()
        assert summary.mean == 0.0
        assert summary.variance == 0.0

    @given(st.lists(st.floats(-1e6, 1e6), min_size=2, max_size=100))
    def test_mean_matches_direct_computation(self, values):
        summary = StreamingSummary()
        summary.extend(values)
        assert summary.mean == pytest.approx(
            sum(values) / len(values), rel=1e-9, abs=1e-6
        )


class TestHistogram:
    def test_bucketing(self):
        histogram = Histogram([1.0, 2.0, 3.0])
        for value in (0.5, 1.5, 2.5, 99.0):
            histogram.add(value)
        assert histogram.counts == [1, 1, 1, 1]

    def test_percentile_interpolates(self):
        histogram = Histogram([10.0, 20.0])
        for _ in range(100):
            histogram.add(5.0)
        assert 0 < histogram.percentile(50) <= 10.0

    def test_percentile_bounds_checked(self):
        histogram = Histogram([1.0])
        with pytest.raises(ValueError):
            histogram.percentile(101)

    def test_unsorted_boundaries_rejected(self):
        with pytest.raises(ValueError):
            Histogram([2.0, 1.0])

    def test_empty_percentile_is_zero(self):
        assert Histogram([1.0]).percentile(99) == 0.0


class TestRateMeter:
    def test_rate(self):
        meter = RateMeter()
        meter.add(100)
        meter.add(100)
        assert meter.rate(now=4.0) == pytest.approx(50.0)

    def test_zero_span(self):
        meter = RateMeter(start_time=5.0)
        meter.add(10)
        assert meter.rate(now=5.0) == 0.0

    def test_total(self):
        meter = RateMeter()
        meter.add(3)
        meter.add(4)
        assert meter.total == 7

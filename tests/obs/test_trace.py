"""Trace-span unit tests: the zero-overhead disabled path, recording
semantics, trace-id scoping, capture/merge, and the TracedStages
adapter the engine installs."""

from __future__ import annotations

import pytest

from repro.obs import trace
from repro.obs.metrics import MetricsRegistry, set_registry


@pytest.fixture(autouse=True)
def _isolated_obs():
    """Fresh registry + empty ring + tracing off around every test."""
    previous = set_registry(MetricsRegistry())
    trace.set_enabled(False)
    trace.clear()
    trace._TRACE_ID.set(None)
    try:
        yield
    finally:
        trace.set_enabled(False)
        trace.clear()
        trace._TRACE_ID.set(None)
        set_registry(previous)


class TestDisabledPath:
    def test_span_is_the_shared_noop_singleton(self):
        assert trace.span("a") is trace.span("b", tag=1)

    def test_noop_span_records_nothing(self):
        with trace.span("engine.stage.hash"):
            pass
        trace.observe("server.queue.wait", 123)
        assert trace.tail() == []

    def test_current_context_is_none(self):
        assert trace.current_context() is None


class TestEnabledPath:
    def test_span_records_name_duration_and_tags(self):
        with trace.enabled():
            with trace.span("engine.stage.compress", chunks=3):
                pass
        records = trace.tail()
        assert len(records) == 1
        record = records[0]
        assert record.name == "engine.stage.compress"
        assert record.tags == {"chunks": 3}
        assert record.dur_ns >= 0
        assert record.trace_id > 0

    def test_nested_spans_share_one_trace_id(self):
        with trace.enabled():
            with trace.span("outer"):
                with trace.span("inner"):
                    pass
        inner, outer = trace.tail()
        assert inner.name == "inner"
        assert inner.trace_id == outer.trace_id

    def test_sequential_roots_get_distinct_trace_ids(self):
        with trace.enabled():
            with trace.span("first"):
                pass
            with trace.span("second"):
                pass
        first, second = trace.tail()
        assert first.trace_id != second.trace_id

    def test_observe_records_a_caller_timed_span(self):
        with trace.enabled():
            trace.observe("server.queue.wait", 5_000, depth=2)
        (record,) = trace.tail()
        assert record.dur_ns == 5_000
        assert record.tags == {"depth": 2}

    def test_spans_feed_a_ns_histogram(self):
        registry = MetricsRegistry()
        previous = set_registry(registry)
        try:
            with trace.enabled():
                with trace.span("engine.stage.pack"):
                    pass
        finally:
            set_registry(previous)
        snap = registry.snapshot()
        assert snap["histograms"]["engine.stage.pack.ns"]["count"] == 1

    def test_enabled_context_restores_prior_state(self):
        with trace.enabled():
            assert trace.is_enabled()
        assert not trace.is_enabled()

    def test_tail_limit_returns_newest_oldest_first(self):
        with trace.enabled():
            for index in range(5):
                with trace.span(f"s{index}"):
                    pass
        names = [record.name for record in trace.tail(2)]
        assert names == ["s3", "s4"]


class TestCaptureAndMerge:
    def test_adopt_captures_instead_of_committing(self):
        with trace.enabled():
            context = trace.current_context()
            assert context is not None
            with trace.adopt(context) as captured:
                with trace.span("pool.slice"):
                    pass
            assert trace.tail() == []
            assert [record.name for record in captured] == ["pool.slice"]
            assert captured[0].trace_id == context.trace_id
            trace.merge(captured)
        assert [record.name for record in trace.tail()] == ["pool.slice"]

    def test_current_context_does_not_bind_the_caller(self):
        # Regression: minting a context outside any span must not leave
        # the caller's thread carrying that trace id — later root spans
        # would all inherit it and trace ids would stop partitioning
        # work.  (Sibling slices still share, because one map() ships
        # the same ExecutorContext to every slice.)
        with trace.enabled():
            context = trace.current_context()
            with trace.span("later.root"):
                pass
        (record,) = trace.tail()
        assert record.trace_id != context.trace_id

    def test_adopt_force_enables_for_process_children(self):
        # A forked worker starts with the module default (disabled) even
        # though the parent traced; adopt() must still capture.
        context = trace.ExecutorContext(trace_id=77)
        with trace.adopt(context) as captured:
            assert trace.is_enabled()
            with trace.span("pool.slice"):
                pass
        assert not trace.is_enabled()
        assert captured[0].trace_id == 77


class TestTracedStages:
    def test_active_mirrors_the_module_flag(self):
        clock = trace.TracedStages()
        assert not clock.active
        with trace.enabled():
            assert clock.active

    def test_stage_names_are_prefixed(self):
        clock = trace.TracedStages()
        with trace.enabled():
            with clock.stage("lookup"):
                pass
        (record,) = trace.tail()
        assert record.name == "engine.stage.lookup"

    def test_stage_is_noop_while_disabled(self):
        clock = trace.TracedStages()
        assert clock.stage("lookup") is trace.span("anything")
        assert trace.tail() == []

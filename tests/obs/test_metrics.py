"""MetricsRegistry unit tests: instrument semantics, kind safety,
collector lifecycle (weak methods), thread safety, and the snapshot
shape everything downstream (STATS, repro.obs top) consumes."""

from __future__ import annotations

import gc
import threading

import pytest

from repro.obs.metrics import (
    DEFAULT_LATENCY_BOUNDS_NS,
    MetricsRegistry,
    bucket_quantile,
    get_registry,
    set_registry,
)


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        counter = MetricsRegistry().counter("c")
        assert counter.value == 0
        counter.inc()
        counter.inc(41)
        assert counter.value == 42

    def test_counters_are_integral(self):
        counter = MetricsRegistry().counter("c")
        with pytest.raises(TypeError):
            counter.inc(1.5)
        with pytest.raises(TypeError):
            counter.inc(True)  # bools are not byte counts

    def test_counters_are_monotonic(self):
        counter = MetricsRegistry().counter("c")
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_threaded_increments_do_not_lose_updates(self):
        registry = MetricsRegistry(stripes=4)
        counter = registry.counter("c")

        def worker():
            for _ in range(5_000):
                counter.inc()

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value == 40_000


class TestGauge:
    def test_set_overwrites(self):
        gauge = MetricsRegistry().gauge("g")
        gauge.set(3)
        gauge.set(1.5)
        assert gauge.value == 1.5


class TestHistogram:
    def test_observations_land_in_inclusive_upper_buckets(self):
        hist = MetricsRegistry().histogram("h", bounds=(10, 100))
        for value in (10, 11, 100, 101):
            hist.observe(value)
        snap = hist.snapshot()
        # bucket 0: <=10, bucket 1: <=100, bucket 2: overflow.
        assert snap["counts"] == [1, 2, 1]
        assert snap["count"] == 4
        assert snap["sum"] == 222
        assert snap["min"] == 10
        assert snap["max"] == 101

    def test_default_bounds_cover_ns_latencies(self):
        assert DEFAULT_LATENCY_BOUNDS_NS == tuple(
            sorted(DEFAULT_LATENCY_BOUNDS_NS)
        )
        assert DEFAULT_LATENCY_BOUNDS_NS[0] == 1_000
        assert DEFAULT_LATENCY_BOUNDS_NS[-1] == 1_000_000_000

    def test_bucket_quantile_interpolates_bounds(self):
        hist = MetricsRegistry().histogram("h", bounds=(10, 100, 1000))
        for _ in range(90):
            hist.observe(5)
        for _ in range(10):
            hist.observe(500)
        snap = hist.snapshot()
        assert bucket_quantile(snap, 0.5) == 10
        assert bucket_quantile(snap, 0.99) == 1000

    def test_quantile_of_empty_histogram_is_zero(self):
        snap = MetricsRegistry().histogram("h").snapshot()
        assert bucket_quantile(snap, 0.99) == 0.0


class TestRegistry:
    def test_same_name_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")

    def test_kind_mismatch_is_an_error(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError):
            registry.gauge("x")

    def test_snapshot_shape_is_sorted_and_typed(self):
        registry = MetricsRegistry()
        registry.counter("b").inc(2)
        registry.counter("a").inc(1)
        registry.gauge("g").set(0.5)
        registry.histogram("h").observe(5_000)
        snap = registry.snapshot()
        assert list(snap) == ["counters", "gauges", "histograms"]
        assert list(snap["counters"]) == ["a", "b"]
        assert snap["gauges"]["g"] == 0.5
        assert snap["histograms"]["h"]["count"] == 1

    def test_reset_clears_instruments(self):
        registry = MetricsRegistry()
        registry.counter("x").inc()
        registry.reset()
        assert registry.snapshot()["counters"] == {}

    def test_collectors_run_on_snapshot(self):
        registry = MetricsRegistry()
        registry.register_collector(
            lambda reg: reg.gauge("pulled").set(7)
        )
        assert registry.snapshot()["gauges"]["pulled"] == 7

    def test_dead_component_collectors_drop_out(self):
        registry = MetricsRegistry()

        class Component:
            def publish(self, reg):
                reg.gauge("component.alive").set(1)

        component = Component()
        registry.register_collector(component.publish)
        assert registry.snapshot()["gauges"]["component.alive"] == 1
        del component
        gc.collect()
        # A live collector would overwrite this back to 1 at snapshot
        # time; a pruned one leaves the manual sample alone.
        registry.gauge("component.alive").set(0)
        assert registry.snapshot()["gauges"]["component.alive"] == 0

    def test_default_registry_is_swappable(self):
        fresh = MetricsRegistry()
        previous = set_registry(fresh)
        try:
            assert get_registry() is fresh
        finally:
            set_registry(previous)
        assert get_registry() is previous

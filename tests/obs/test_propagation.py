"""Span propagation across the StagePool's executor boundary — both
backends — plus the differential guarantee: arming observability must
not change a single output byte or ledger entry."""

from __future__ import annotations

import pytest

from repro.datared.compression import ZlibCompressor
from repro.datared.dedup import DedupEngine
from repro.obs import trace
from repro.obs.metrics import MetricsRegistry, set_registry
from repro.obs.trace import TracedStages
from repro.parallel import StagePool


@pytest.fixture(autouse=True)
def _isolated_obs():
    previous = set_registry(MetricsRegistry())
    trace.set_enabled(False)
    trace.clear()
    try:
        yield
    finally:
        trace.set_enabled(False)
        trace.clear()
        set_registry(previous)


def _probe(item: int) -> int:
    """Module-level so the process backend can pickle it."""
    with trace.span("probe.item"):
        return item * 2


@pytest.mark.parametrize("backend", ["thread", "process"])
def test_pool_spans_share_the_parent_trace_id(backend):
    with trace.enabled():
        with StagePool(4, backend=backend, min_slice_items=1) as pool:
            with trace.span("parent"):
                results = pool.map(_probe, list(range(32)))
    assert results == [index * 2 for index in range(32)]
    records = trace.tail()
    parents = [record for record in records if record.name == "parent"]
    slices = [record for record in records if record.name == "pool.slice"]
    items = [record for record in records if record.name == "probe.item"]
    assert len(parents) == 1
    assert len(items) == 32
    assert slices, "fan-out should have dispatched traced slices"
    trace_ids = {record.trace_id for record in records}
    assert trace_ids == {parents[0].trace_id}


@pytest.mark.parametrize("backend", ["thread", "process"])
def test_untraced_pool_dispatches_the_plain_runner(backend):
    with StagePool(4, backend=backend, min_slice_items=1) as pool:
        results = pool.map(_probe, list(range(32)))
    assert results == [index * 2 for index in range(32)]
    assert trace.tail() == []


def test_worker_spans_land_in_the_parent_registry():
    registry = MetricsRegistry()
    previous = set_registry(registry)
    try:
        with trace.enabled():
            with StagePool(4, backend="process", min_slice_items=1) as pool:
                pool.map(_probe, list(range(32)))
    finally:
        set_registry(previous)
    histograms = registry.snapshot()["histograms"]
    # A process child's commits would be stranded in its interpreter;
    # capture-and-merge puts them in ours.
    assert histograms["probe.item.ns"]["count"] == 32
    assert histograms["pool.slice.ns"]["count"] >= 1


def _write_fleet(pool, clock) -> tuple:
    engine = DedupEngine(
        num_buckets=1 << 12, compressor=ZlibCompressor(), pool=pool
    )
    engine.stage_clock = clock
    lba = 0
    payloads = []
    for index in range(48):
        if index % 3 == 0:
            data = bytes([index % 7]) * 4096
        else:
            data = index.to_bytes(2, "big") * 2048
        payloads.append((lba, data))
        lba += engine.chunker.blocks_per_chunk
    engine.write_many(payloads)
    engine.flush()
    reads = [engine.read(lba, 1).data for lba, _ in payloads]
    return reads, engine.stats_snapshot()


@pytest.mark.parametrize("backend", ["thread", "process"])
def test_tracing_does_not_change_bytes_or_ledgers(backend):
    with StagePool(1) as serial_pool:
        baseline_reads, baseline_stats = _write_fleet(serial_pool, None)
    with trace.enabled():
        with StagePool(4, backend=backend, min_slice_items=1) as pool:
            traced_reads, traced_stats = _write_fleet(pool, TracedStages())
    assert traced_reads == baseline_reads
    assert traced_stats == baseline_stats
    assert any(
        record.name.startswith("engine.stage.") for record in trace.tail()
    )

"""Tests for the FIDR extensions (read offload, hot cache)."""

import pytest

from repro.datared.compression import ModeledCompressor
from repro.systems.accounting import CpuTask, MemPath
from repro.systems.extensions import ExtendedFidrSystem, HotReadCache
from repro.systems.fidr import FidrSystem

CHUNK = 4096


def build(**kwargs):
    kwargs.setdefault("num_buckets", 1024)
    kwargs.setdefault("cache_lines", 64)
    kwargs.setdefault("compressor", ModeledCompressor(0.5))
    return ExtendedFidrSystem(**kwargs)


class TestHotReadCache:
    def test_second_read_admits(self, rng):
        cache = HotReadCache(4)
        data = rng.randbytes(CHUNK)
        assert cache.get(1) is None
        assert not cache.offer(1, data)  # first sight: ghost only
        assert cache.get(1) is None
        assert cache.offer(1, data)  # second sight: cached
        assert cache.get(1) == data

    def test_scan_does_not_pollute(self, rng):
        cache = HotReadCache(2)
        hot = rng.randbytes(CHUNK)
        cache.offer(1, hot)
        cache.offer(1, hot)
        assert len(cache) == 1
        # A long one-touch scan leaves the hot entry resident.
        for lba in range(100, 200):
            cache.offer(lba, rng.randbytes(16))
        assert cache.get(1) == hot

    def test_capacity_evicts_lru(self, rng):
        cache = HotReadCache(2)
        for lba in (1, 2, 3):
            cache.offer(lba, b"x")
            cache.offer(lba, b"x")
        assert cache.get(1) is None  # oldest admitted entry evicted
        assert cache.get(3) == b"x"

    def test_invalidate(self):
        cache = HotReadCache(2)
        cache.offer(1, b"x")
        cache.offer(1, b"x")
        cache.invalidate(1)
        assert cache.get(1) is None

    def test_hit_rate(self):
        cache = HotReadCache(2)
        cache.offer(1, b"x")
        cache.offer(1, b"x")
        cache.get(1)  # hit
        cache.get(2)  # miss
        assert cache.hit_rate == pytest.approx(0.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            HotReadCache(0)


class TestNvmeReadOffload:
    def test_offload_removes_read_stack_cycles(self, rng):
        data = {lba: rng.randbytes(CHUNK) for lba in range(0, 80, 8)}

        def drive(system):
            for lba, payload in data.items():
                system.write(lba, payload)
            system.flush()
            for lba, payload in data.items():
                assert system.read(lba, 1) == payload
            return system.cpu.tasks().get(CpuTask.DATA_SSD, 0.0)

        stock = drive(FidrSystem(num_buckets=1024, cache_lines=64,
                                 compressor=ModeledCompressor(0.5)))
        offloaded = drive(build(nvme_read_offload=True))
        assert offloaded < stock
        # Container-seal submissions (writes) remain host-side.
        assert offloaded > 0

    def test_functionally_identical(self, rng):
        data = {lba: rng.randbytes(CHUNK) for lba in range(0, 64, 8)}
        system = build(nvme_read_offload=True)
        for lba, payload in data.items():
            system.write(lba, payload)
        system.flush()
        for lba, payload in data.items():
            assert system.read(lba, 1) == payload


class TestHotCacheIntegration:
    def test_repeated_reads_hit_dram(self, rng):
        system = build(hot_read_cache_chunks=16)
        payload = rng.randbytes(CHUNK)
        system.write(0, payload)
        system.flush()
        for _ in range(5):
            assert system.read(0, 1) == payload
        assert system.hot_read_cache.hits >= 3
        assert system.memory.paths()[MemPath.HOT_READ].total > 0

    def test_write_invalidates_cached_block(self, rng):
        system = build(hot_read_cache_chunks=16)
        old = rng.randbytes(CHUNK)
        system.write(0, old)
        system.flush()
        system.read(0, 1)
        system.read(0, 1)
        system.read(0, 1)  # now cached and hitting
        new = rng.randbytes(CHUNK)
        system.write(0, new)
        assert system.read(0, 1) == new  # never the stale cached copy
        system.flush()
        assert system.read(0, 1) == new

    def test_ssd_reads_drop_on_skewed_workload(self, rng):
        def ssd_reads(system):
            payload = rng.randbytes(CHUNK)
            system.write(0, payload)
            system.flush()
            for _ in range(20):
                system.read(0, 1)
            return system.data_array.stats.read_ops

        rng_state = rng.getstate()
        stock = ssd_reads(FidrSystem(num_buckets=1024, cache_lines=64,
                                     compressor=ModeledCompressor(0.5)))
        rng.setstate(rng_state)
        cached = ssd_reads(build(hot_read_cache_chunks=16))
        assert cached < stock

    def test_disabled_by_default(self):
        system = build()
        assert system.hot_read_cache is None
        assert not system.nvme_read_offload

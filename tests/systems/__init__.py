"""Test package."""

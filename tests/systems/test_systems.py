"""Tests for the end-to-end baseline and FIDR systems."""

import pytest

from repro.datared.compression import ModeledCompressor
from repro.systems.accounting import CpuTask, MemPath
from repro.systems.baseline import BaselineSystem
from repro.systems.fidr import FidrSystem

CHUNK = 4096


def small(cls, **kwargs):
    kwargs.setdefault("num_buckets", 1024)
    kwargs.setdefault("cache_lines", 64)
    kwargs.setdefault("compressor", ModeledCompressor(0.5))
    return cls(**kwargs)


def fill(system, rng, num_chunks=200, space=400):
    """Write a half-duplicate stream; returns {lba: expected bytes}.

    Half the writes reuse a small hot pool (duplicates), half are fresh
    random content — enough distinct buckets to exercise cache misses,
    fetches and flushes on the 64-line caches the tests use.
    """
    expected = {}
    pool = [rng.randbytes(CHUNK) for _ in range(40)]
    for _ in range(num_chunks):
        lba = rng.randrange(space)
        if rng.random() < 0.5:
            data = pool[rng.randrange(len(pool))]
        else:
            data = rng.randbytes(CHUNK)
        system.write(lba, data)
        expected[lba] = data
    return expected


class TestFunctionalEquivalence:
    @pytest.mark.parametrize("cls", [BaselineSystem, FidrSystem])
    def test_write_read_roundtrip(self, cls, rng):
        system = small(cls)
        expected = fill(system, rng)
        system.flush()
        for lba, data in expected.items():
            assert system.read(lba, 1) == data

    @pytest.mark.parametrize("cls", [BaselineSystem, FidrSystem])
    def test_read_your_own_buffered_write(self, cls, rng):
        """Reads must observe writes still staged in a batch buffer."""
        system = small(cls)
        data = rng.randbytes(CHUNK)
        system.write(7, data)  # far below the 64-chunk batch threshold
        assert system.read(7, 1) == data

    def test_both_systems_reduce_identically(self, rng):
        state = rng.getstate()
        base = small(BaselineSystem)
        fill(base, rng)
        base.flush()
        rng.setstate(state)
        fidr = small(FidrSystem)
        fill(fidr, rng)
        fidr.flush()
        assert base.engine.stats.dedup_ratio == fidr.engine.stats.dedup_ratio
        assert base.engine.stats.stored_bytes == fidr.engine.stats.stored_bytes

    @pytest.mark.parametrize("cls", [BaselineSystem, FidrSystem])
    def test_unwritten_reads_zero(self, cls):
        system = small(cls)
        assert system.read(0, 1) == b"\x00" * CHUNK

    @pytest.mark.parametrize("cls", [BaselineSystem, FidrSystem])
    def test_unaligned_read_rejected(self, cls):
        with pytest.raises(ValueError):
            small(cls).read(0, 0)


class TestBaselineAccounting:
    def test_every_table1_path_charged(self, rng):
        system = small(BaselineSystem)
        fill(system, rng)
        system.flush()
        system.read(0, 1)
        paths = system.memory.paths()
        for path in (MemPath.NIC_HOST, MemPath.PREDICTION, MemPath.FPGA,
                     MemPath.TABLE_CACHE, MemPath.DATA_SSD):
            assert paths[path].total > 0, path

    def test_predictor_and_table_tasks_charged(self, rng):
        system = small(BaselineSystem)
        fill(system, rng)
        system.flush()
        tasks = system.cpu.tasks()
        for task in (CpuTask.PREDICTOR, CpuTask.TREE, CpuTask.TABLE_SSD,
                     CpuTask.CONTENT, CpuTask.SCHEDULER):
            assert tasks.get(task, 0) > 0, task

    def test_no_p2p_traffic(self, rng):
        system = small(BaselineSystem)
        fill(system, rng)
        system.flush()
        assert system.pcie.p2p_bytes == 0

    def test_predictor_accuracy_reported(self, rng):
        system = small(BaselineSystem)
        fill(system, rng)
        system.flush()
        report = system.report()
        assert report.predictor_accuracy is not None
        assert report.predictor_accuracy > 0.8


class TestFidrAccounting:
    def test_client_data_never_crosses_host_dram(self, rng):
        system = small(FidrSystem)
        fill(system, rng, num_chunks=256)
        system.flush()
        paths = system.memory.paths()
        assert MemPath.NIC_HOST not in paths
        assert MemPath.PREDICTION not in paths
        assert MemPath.FPGA not in paths

    def test_no_predictor_or_tree_cpu(self, rng):
        system = small(FidrSystem)
        fill(system, rng, num_chunks=256)
        system.flush()
        tasks = system.cpu.tasks()
        assert CpuTask.PREDICTOR not in tasks
        assert CpuTask.TREE not in tasks
        assert CpuTask.TABLE_SSD not in tasks
        assert tasks[CpuTask.CONTENT] > 0  # content scans stay host-side

    def test_write_path_is_peer_to_peer(self, rng):
        system = small(FidrSystem)
        fill(system, rng, num_chunks=256)
        system.flush()
        assert system.pcie.p2p_bytes > 0
        comp = system.pcie.device("compression-engine")
        assert comp.bytes_in > 0  # NIC -> engine, P2P
        ssd = system.pcie.device("data-ssd")
        assert ssd.bytes_in > 0  # engine -> SSD, P2P

    def test_fidr_dram_traffic_below_baseline(self, rng):
        state = rng.getstate()
        base = small(BaselineSystem)
        fill(base, rng, num_chunks=300)
        base.flush()
        rng.setstate(state)
        fidr = small(FidrSystem)
        fill(fidr, rng, num_chunks=300)
        fidr.flush()
        base_amp = base.report().memory_amplification()
        fidr_amp = fidr.report().memory_amplification()
        assert fidr_amp < 0.6 * base_amp

    def test_nic_buffer_serves_reads_before_flush(self, rng):
        system = small(FidrSystem)
        data = rng.randbytes(CHUNK)
        system.write(3, data)
        assert system.read(3, 1) == data
        assert system.nic.read_buffer_hits == 1

    def test_read_path_decompression_is_p2p(self, rng):
        system = small(FidrSystem)
        data = rng.randbytes(CHUNK)
        system.write(3, data)
        system.flush()
        assert system.read(3, 1) == data
        decomp = system.pcie.device("decompression-engine")
        assert decomp.bytes_in > 0
        assert decomp.bytes_out > 0

    def test_engine_tree_updates_reported(self, rng):
        system = small(FidrSystem)
        fill(system, rng, num_chunks=256)
        system.flush()
        report = system.report()
        assert report.engine_tree_updates > 0
        assert report.tree_node_visits == 0  # host never walks the tree


class TestSoftwareCacheVariant:
    def test_sw_cache_charges_host_tree_work(self, rng):
        system = small(FidrSystem, hw_cache_engine=False)
        fill(system, rng, num_chunks=256)
        system.flush()
        tasks = system.cpu.tasks()
        assert tasks.get(CpuTask.TREE, 0) > 0
        assert tasks.get(CpuTask.TABLE_SSD, 0) > 0
        # But the NIC/P2P ideas still apply: no predictor, no NIC buffering
        # in host memory.
        assert CpuTask.PREDICTOR not in tasks
        assert MemPath.NIC_HOST not in system.memory.paths()

    def test_sw_variant_still_functionally_correct(self, rng):
        system = small(FidrSystem, hw_cache_engine=False)
        expected = fill(system, rng)
        system.flush()
        for lba, data in list(expected.items())[:50]:
            assert system.read(lba, 1) == data

"""System-level differential: ``parallelism=N`` must be invisible.

The engine-level grid (``tests/datared/test_parallel.py``) proves the
batched path returns identical bytes and reports.  This file closes the
loop at the system layer: every *device-ledger charge* — CPU cycles per
task, DRAM bytes per path, PCIe bytes per endpoint, table/data-SSD IO,
table-cache events — must match between a serial system and a parallel
one fed the same workload, because the whole point of the design is
that threading changes wall-clock time and nothing else.
"""

import random

import pytest

from repro.analysis.invariants import check_system
from repro.datared.compression import ZlibCompressor
from repro.systems.config import SystemConfig
from repro.systems.server import StorageServer, SystemKind

CHUNK = 4096


def run_workload(kind: SystemKind, parallelism: int, executor: str = "thread"):
    storage = StorageServer.build(
        kind,
        num_buckets=2048,
        cache_lines=128,
        compressor=ZlibCompressor(),
        config=SystemConfig(
            parallelism=parallelism, batch_chunks=16, executor=executor
        ),
    )
    rng = random.Random(0xD1FF)
    pool = [
        rng.randbytes(CHUNK // 2) + bytes(CHUNK // 2) for _ in range(5)
    ]
    read_back = []
    with storage:
        for step in range(120):
            lba = rng.randrange(32)
            if rng.random() < 0.4:
                storage.write(lba, pool[rng.randrange(len(pool))])
            else:
                storage.write(
                    lba, rng.randbytes(CHUNK // 2) + bytes(CHUNK // 2)
                )
            if step % 10 == 9:
                read_back.append(storage.read(rng.randrange(32), 1))
        storage.flush()
        for lba in range(32):
            read_back.append(storage.read(lba, 1))
    return storage, read_back


def ledger_view(storage: StorageServer):
    """Every charge the system made, as comparable plain data."""
    system = storage.system
    return {
        "cpu": dict(system.cpu._cycles),
        "memory": {
            path: (traffic.bytes_read, traffic.bytes_written)
            for path, traffic in system.memory._paths.items()
        },
        "pcie": [
            (device.name, device.bytes_in, device.bytes_out)
            for device in system.pcie.devices()
        ],
        "table_ssd": system.table_array.stats,
        "data_ssd": system.data_array.stats,
        "cache": system.table_cache.stats,
        "reduction": system.engine.stats,
        "tree_searches": system.table_cache.index.searches,
        "tree_updates": system.table_cache.index.updates,
    }


@pytest.mark.parametrize("kind", [SystemKind.FIDR, SystemKind.BASELINE])
def test_parallelism_leaves_every_ledger_untouched(kind):
    serial_storage, serial_reads = run_workload(kind, parallelism=1)
    parallel_storage, parallel_reads = run_workload(kind, parallelism=4)
    try:
        assert serial_reads == parallel_reads
        serial_view = ledger_view(serial_storage)
        parallel_view = ledger_view(parallel_storage)
        for key in serial_view:
            assert serial_view[key] == parallel_view[key], key
        assert parallel_storage.system.engine.plan_fallback_compressions == 0
        assert parallel_storage.system.engine.plan_wasted_compressions == 0
        assert check_system(serial_storage.system) == []
        assert check_system(parallel_storage.system) == []
    finally:
        parallel_storage.system.pool.shutdown()


@pytest.mark.parametrize("kind", [SystemKind.FIDR, SystemKind.BASELINE])
def test_process_executor_leaves_every_ledger_untouched(kind):
    """A ``ProcessPoolExecutor`` backend must be as invisible as threads.

    This is the strongest identity check available: chunk payloads are
    pickled across the IPC boundary, compressed in worker *processes*
    with fresh deflate state, and the results pickled back — and every
    byte, report, and device-ledger charge must still match the serial
    run (the full-flush framing makes fresh and reused deflate state
    emit identical bytes).
    """
    serial_storage, serial_reads = run_workload(kind, parallelism=1)
    process_storage, process_reads = run_workload(
        kind, parallelism=2, executor="process"
    )
    try:
        assert serial_reads == process_reads
        serial_view = ledger_view(serial_storage)
        process_view = ledger_view(process_storage)
        for key in serial_view:
            assert serial_view[key] == process_view[key], key
        assert check_system(serial_storage.system) == []
        assert check_system(process_storage.system) == []
    finally:
        process_storage.system.pool.shutdown()

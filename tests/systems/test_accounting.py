"""Tests for the SystemReport projection surface."""

import pytest

from repro.experiments import SMOKE_SCALE, get_report
from repro.hw.fpga import EngineTraffic
from repro.hw.specs import VCU1525
from repro.systems.accounting import CpuTask, FIG5B_GROUPS


@pytest.fixture(scope="module")
def report():
    return get_report("baseline", "write-h", SMOKE_SCALE)


class TestProjections:
    def test_memory_demand_linear_in_throughput(self, report):
        at_10 = report.memory_bw_demand(10e9)
        at_20 = report.memory_bw_demand(20e9)
        assert at_20 == pytest.approx(2 * at_10)

    def test_cores_linear_in_throughput(self, report):
        assert report.cores_required(20e9) == pytest.approx(
            2 * report.cores_required(10e9)
        )

    def test_utilization_consistent_with_demand(self, report):
        throughput = 10e9
        assert report.memory_utilization(throughput) == pytest.approx(
            report.memory_bw_demand(throughput) / report.server.dram.peak_bw
        )

    def test_max_throughputs_invert_demands(self, report):
        at_cap = report.max_throughput_memory()
        assert report.memory_bw_demand(at_cap) == pytest.approx(
            report.server.dram.peak_bw
        )
        cpu_cap = report.max_throughput_cpu()
        assert report.cores_required(cpu_cap) == pytest.approx(
            report.server.cpu.cores
        )

    def test_breakdowns_are_distributions(self, report):
        for breakdown in (report.memory_breakdown(), report.cpu_breakdown()):
            assert sum(breakdown.values()) == pytest.approx(1.0)
            assert all(share >= 0 for share in breakdown.values())

    def test_group_breakdown_covers_everything(self, report):
        groups = report.cpu_group_breakdown()
        assert sum(groups.values()) == pytest.approx(1.0)
        assert set(groups) <= {"memory/IO management", "other"}

    def test_table2_subset(self, report):
        subset = report.table2_breakdown()
        full = report.cpu_breakdown()
        for task, share in subset.items():
            assert full[task] == share

    def test_logical_bytes_sum(self, report):
        assert report.logical_bytes == (
            report.logical_write_bytes + report.logical_read_bytes
        )


class TestGroupMap:
    def test_every_task_constant_is_grouped(self):
        task_constants = {
            value for name, value in vars(CpuTask).items()
            if not name.startswith("_") and isinstance(value, str)
        }
        assert task_constants <= set(FIG5B_GROUPS) | {CpuTask.CONTENT_UPDATE,
                                                      CpuTask.DEVICE_MANAGER,
                                                      CpuTask.CONTENT,
                                                      CpuTask.LBA_MAP,
                                                      CpuTask.DATA_SSD,
                                                      CpuTask.NETWORK}


class TestEngineTraffic:
    def test_utilization(self):
        traffic = EngineTraffic(pcie_in=VCU1525.pcie.bw, pcie_out=0,
                                board_dram=VCU1525.board_dram_bw)
        shares = traffic.utilization(VCU1525, data_throughput=1e9,
                                     logical_bytes=1e9)
        assert shares["pcie"] == pytest.approx(1.0)
        assert shares["board_dram"] == pytest.approx(1.0)

    def test_requires_logical_bytes(self):
        with pytest.raises(ValueError):
            EngineTraffic().utilization(VCU1525, 1e9, 0)

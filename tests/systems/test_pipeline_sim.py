"""Tests for the discrete-event write-pipeline simulation."""

import pytest

from repro.analysis.throughput import solve_throughput
from repro.experiments import SMOKE_SCALE, get_report
from repro.systems.pipeline_sim import simulate_write_pipeline


@pytest.fixture(scope="module")
def reports():
    return {
        "baseline": get_report("baseline", "write-h", SMOKE_SCALE, server="target"),
        "fidr": get_report("fidr", "write-h", SMOKE_SCALE, server="target"),
    }


class TestSaturation:
    def test_saturated_throughput_matches_solver(self, reports):
        """The DES must agree with the closed-form ceiling at saturation
        (the whole point of the cross-validation)."""
        for flavour, kwargs in (
            ("baseline", dict()),
            ("fidr", dict(use_cache_engine=True, tree_window=4)),
        ):
            solved = solve_throughput(reports[flavour], **kwargs)
            result = simulate_write_pipeline(
                reports[flavour], outstanding=16, num_batches=300, **kwargs
            )
            assert result.throughput_bytes_per_s == pytest.approx(
                solved.throughput, rel=0.05
            )
            assert result.bottleneck == solved.bottleneck

    def test_fidr_outperforms_baseline(self, reports):
        base = simulate_write_pipeline(reports["baseline"], outstanding=16)
        fidr = simulate_write_pipeline(
            reports["fidr"], outstanding=16,
            use_cache_engine=True, tree_window=4,
        )
        assert fidr.throughput_bytes_per_s > 2 * base.throughput_bytes_per_s


class TestLoadCurve:
    def test_throughput_monotone_in_window(self, reports):
        values = [
            simulate_write_pipeline(
                reports["fidr"], outstanding=window, num_batches=200
            ).throughput_bytes_per_s
            for window in (1, 2, 8)
        ]
        assert values[0] < values[1] <= values[2] * 1.01

    def test_latency_grows_past_saturation(self, reports):
        shallow = simulate_write_pipeline(
            reports["fidr"], outstanding=2, num_batches=200
        )
        deep = simulate_write_pipeline(
            reports["fidr"], outstanding=32, num_batches=200
        )
        assert deep.mean_batch_latency_s > 3 * shallow.mean_batch_latency_s

    def test_single_batch_latency_is_sum_of_stages(self, reports):
        result = simulate_write_pipeline(
            reports["fidr"], outstanding=1, num_batches=50
        )
        # At window 1 there is no queueing: latency is pure service time,
        # identical for every batch.
        assert result.mean_batch_latency_s == pytest.approx(
            result.p99ish_batch_latency_s, rel=1e-6
        )


class TestAccounting:
    def test_all_batches_complete(self, reports):
        result = simulate_write_pipeline(
            reports["baseline"], outstanding=4, num_batches=123
        )
        assert result.batches == 123

    def test_bottleneck_utilization_saturates(self, reports):
        result = simulate_write_pipeline(
            reports["baseline"], outstanding=16, num_batches=300
        )
        assert result.stage_utilization[result.bottleneck] > 0.95

    def test_validation(self, reports):
        with pytest.raises(ValueError):
            simulate_write_pipeline(reports["fidr"], outstanding=0)
        with pytest.raises(ValueError):
            simulate_write_pipeline(reports["fidr"], num_batches=0)


class TestReadPipeline:
    @pytest.fixture(scope="class")
    def read_reports(self):
        return {
            "baseline": get_report(
                "baseline", "read-mixed", SMOKE_SCALE, server="target"
            ),
            "fidr": get_report(
                "fidr", "read-mixed", SMOKE_SCALE, server="target"
            ),
        }

    def test_single_engine_binds_both(self, read_reports):
        from repro.systems.pipeline_sim import simulate_read_pipeline

        base = simulate_read_pipeline(read_reports["baseline"], outstanding=16)
        fidr = simulate_read_pipeline(
            read_reports["fidr"], outstanding=16, fidr_datapath=True
        )
        assert base.bottleneck == fidr.bottleneck == "decompress"
        # Same cap, but FIDR leaves the host almost idle.
        assert fidr.stage_utilization["host_cpu"] < (
            base.stage_utilization["host_cpu"]
        )
        assert fidr.stage_utilization["pcie_root"] < 0.05

    def test_scaling_engines_exposes_host_gap(self, read_reports):
        from repro.systems.pipeline_sim import simulate_read_pipeline

        wide = 4 * 12.8e9  # four decompression engines
        base = simulate_read_pipeline(
            read_reports["baseline"], outstanding=16, decompress_bw=wide
        )
        fidr = simulate_read_pipeline(
            read_reports["fidr"], outstanding=16, fidr_datapath=True,
            decompress_bw=wide,
        )
        assert fidr.throughput_bytes_per_s > base.throughput_bytes_per_s
        assert base.bottleneck in ("host_cpu", "host_dram")

    def test_baseline_dram_stage_present_only_without_p2p(self, read_reports):
        from repro.systems.pipeline_sim import simulate_read_pipeline

        base = simulate_read_pipeline(read_reports["baseline"], outstanding=4)
        fidr = simulate_read_pipeline(
            read_reports["fidr"], outstanding=4, fidr_datapath=True
        )
        assert "host_dram" in base.stage_utilization
        assert "host_dram" not in fidr.stage_utilization

    def test_validation(self, read_reports):
        from repro.systems.pipeline_sim import simulate_read_pipeline

        write_only = get_report("fidr", "write-h", SMOKE_SCALE, server="target")
        with pytest.raises(ValueError):
            simulate_read_pipeline(write_only)

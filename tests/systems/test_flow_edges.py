"""Edge cases in the write/read flow orchestration.

These pin down the hairiest interactions: same-LBA overwrites racing a
batch in flight, the predictor's correction pass, and the FIDR NIC's
buffer semantics across batch boundaries.
"""

import pytest

from repro.datared.compression import ModeledCompressor
from repro.systems.accounting import CpuTask, MemPath
from repro.systems.baseline import BaselineSystem
from repro.systems.config import SystemConfig
from repro.systems.fidr import FidrSystem

CHUNK = 4096


def tiny_batches(cls, batch=4, **kwargs):
    """A system with a small batch so tests cross batch boundaries."""
    kwargs.setdefault("num_buckets", 1024)
    kwargs.setdefault("cache_lines", 64)
    kwargs.setdefault("compressor", ModeledCompressor(0.5))
    return cls(config=SystemConfig(batch_chunks=batch), **kwargs)


class TestSameLbaChurn:
    @pytest.mark.parametrize("cls", [BaselineSystem, FidrSystem])
    def test_rapid_overwrites_within_a_batch(self, cls, rng):
        system = tiny_batches(cls, batch=8)
        final = None
        for _ in range(20):
            final = rng.randbytes(CHUNK)
            system.write(0, final)
        system.flush()
        assert system.read(0, 1) == final

    def test_fidr_nic_buffer_overwrite_mid_batch(self, rng):
        """The NIC dedups same-LBA writes in its buffer; the staged batch
        list can therefore reference an entry the buffer replaced."""
        system = tiny_batches(FidrSystem, batch=4)
        first = rng.randbytes(CHUNK)
        second = rng.randbytes(CHUNK)
        system.write(0, first)
        system.write(0, second)  # overwrites in NIC buffer
        system.write(8, rng.randbytes(CHUNK))
        system.write(16, rng.randbytes(CHUNK))  # 4 pending -> batch fires
        system.flush()
        assert system.read(0, 1) == second

    @pytest.mark.parametrize("cls", [BaselineSystem, FidrSystem])
    def test_interleaved_read_write_consistency(self, cls, rng):
        system = tiny_batches(cls, batch=6)
        history = {}
        for step in range(60):
            lba = (step * 8) % 32
            data = rng.randbytes(CHUNK)
            system.write(lba, data)
            history[lba] = data
            probe = (step * 16) % 32
            expected = history.get(probe, b"\x00" * CHUNK)
            assert system.read(probe, 1) == expected


class TestPredictorCorrections:
    def test_false_duplicates_trigger_correction_traffic(self, rng):
        """Bloom aliasing predicts some fresh chunks duplicate; the
        baseline must re-ship them to the FPGA (extra host<->FPGA
        bytes beyond one pass of the data)."""
        from repro.systems.predictor import UniqueChunkPredictor

        system = tiny_batches(BaselineSystem, batch=8)
        # A predictor small enough to alias heavily.
        system.predictor = UniqueChunkPredictor(num_bits=256, num_hashes=2)
        for lba in range(0, 8 * 40, 8):
            system.write(lba, rng.randbytes(CHUNK))
        system.flush()
        stats = system.predictor.stats
        assert stats.false_duplicate > 0
        fpga = system.memory.path_traffic(MemPath.FPGA)
        # Reads toward the FPGA exceed one pass of the logical stream.
        assert fpga.bytes_read > system.logical_write_bytes

    def test_accurate_predictor_avoids_corrections(self, rng):
        system = tiny_batches(BaselineSystem, batch=8)
        data = rng.randbytes(CHUNK)
        for lba in range(0, 8 * 20, 8):
            system.write(lba, data)  # one unique, rest duplicates
        system.flush()
        stats = system.predictor.stats
        assert stats.accuracy > 0.9


class TestBatchBoundaries:
    @pytest.mark.parametrize("cls", [BaselineSystem, FidrSystem])
    def test_flush_handles_partial_batch(self, cls, rng):
        system = tiny_batches(cls, batch=64)
        data = rng.randbytes(CHUNK)
        system.write(0, data)  # far below the batch threshold
        system.flush()
        assert system.read(0, 1) == data
        assert system.engine.stats.unique_chunks == 1

    @pytest.mark.parametrize("cls", [BaselineSystem, FidrSystem])
    def test_large_write_spans_batches(self, cls, rng):
        system = tiny_batches(cls, batch=4)
        payload = rng.randbytes(10 * CHUNK)  # 10 chunks > 2 batches
        system.write(0, payload)
        system.flush()
        assert system.read(0, 10) == payload

    def test_fidr_overwrite_straddling_batch_stays_readable(self, rng):
        """Regression: an older write to LBA X lands in batch N while its
        overwrite is still pending for batch N+1.  Processing batch N
        used to pop X's NIC-buffer entry (which by then held the *new*
        data), so a read in the window between the batches fell through
        to the stale on-SSD mapping."""
        batch = 4
        system = tiny_batches(FidrSystem, batch=batch)
        old, new = rng.randbytes(CHUNK), rng.randbytes(CHUNK)
        system.write(5, old)
        for index in range(batch - 2):  # leave pending one short of full
            system.write(100 + index, rng.randbytes(CHUNK))
        # A two-chunk write at LBAs 4-5: chunk @4 completes batch 1
        # (which contains the old @5), chunk @5 stays pending.
        system.write(4, rng.randbytes(CHUNK) + new)
        assert system.read(5, 1) == new  # served from the NIC buffer
        system.flush()
        assert system.read(5, 1) == new  # and after the batch commits

    def test_fidr_pending_count_tracks_nic(self, rng):
        system = tiny_batches(FidrSystem, batch=8)
        for lba in range(0, 8 * 5, 8):
            system.write(lba, rng.randbytes(CHUNK))
        assert system.nic.pending_chunks() == 5
        system.flush()
        assert system.nic.pending_chunks() == 0


class TestReadMixedAccounting:
    def test_fidr_read_misses_charge_nvme_stack(self, rng):
        system = tiny_batches(FidrSystem, batch=4)
        data = rng.randbytes(CHUNK)
        system.write(0, data)
        system.flush()
        before = system.cpu.tasks().get(CpuTask.DATA_SSD, 0.0)
        system.read(0, 1)
        after = system.cpu.tasks().get(CpuTask.DATA_SSD, 0.0)
        assert after > before  # §7.5: read stack stays on the CPU

    def test_fidr_nic_buffer_read_is_free_of_host_work(self, rng):
        system = tiny_batches(FidrSystem, batch=64)
        data = rng.randbytes(CHUNK)
        system.write(0, data)  # still buffered
        cycles_before = system.cpu.total_cycles
        assert system.read(0, 1) == data
        assert system.cpu.total_cycles == cycles_before

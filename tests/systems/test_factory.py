"""``SystemConfig.shards`` threading through the R009 engine factory.

``build_engine`` is the one place the serving layer may construct an
engine: ``shards=1`` (the default) must build the exact plain
:class:`~repro.datared.dedup.DedupEngine` the pre-sharding systems
built, and ``shards >= 2`` must build a
:class:`~repro.datared.sharded.ShardedDedupEngine` that the full
system stack (staging batches, accounting, invariants) drives without
knowing the difference.
"""

import pytest

from repro.analysis.invariants import check_system
from repro.datared.dedup import DedupEngine
from repro.datared.sharded import ShardedDedupEngine
from repro.systems import FidrSystem
from repro.systems.config import SystemConfig
from repro.systems.factory import build_engine

CHUNK = 4096


class TestBuildEngine:
    def test_default_config_builds_plain_engine(self):
        engine = build_engine(SystemConfig(), num_buckets=256)
        assert type(engine) is DedupEngine

    def test_sharded_config_builds_sharded_engine(self):
        engine = build_engine(SystemConfig(shards=4), num_buckets=256)
        try:
            assert type(engine) is ShardedDedupEngine
            assert engine.num_shards == 4
            assert len(engine.shards) == 4
            assert all(
                type(shard) is DedupEngine for shard in engine.shards
            )
        finally:
            engine.shutdown()

    def test_invalid_shard_count_rejected(self):
        with pytest.raises(ValueError):
            build_engine(SystemConfig(shards=0))

    def test_config_knobs_reach_every_shard(self):
        config = SystemConfig(shards=2, read_cache_chunks=8)
        engine = build_engine(config, num_buckets=128)
        try:
            for shard in engine.shards:
                assert shard.chunker.chunk_size == config.chunk_size
        finally:
            engine.shutdown()


class TestSystemWithShards:
    def test_fidr_system_runs_on_a_sharded_engine(self, rng):
        system = FidrSystem(
            num_buckets=512,
            config=SystemConfig(shards=2, batch_chunks=4),
        )
        try:
            assert isinstance(system.engine, ShardedDedupEngine)
            payloads = {}
            step = system.engine.chunker.blocks_per_chunk
            for index in range(12):
                data = rng.randbytes(CHUNK)
                system.write(index * step, data)
                payloads[index * step] = data
            system.flush()
            for lba, data in payloads.items():
                assert system.read(lba, 1) == data
            # Front-door vs engine accounting and the cluster ledger
            # both hold (check_system dispatches to the sharded checks).
            assert check_system(system) == []
        finally:
            system.engine.shutdown()

    def test_fidr_system_default_stays_unsharded(self):
        system = FidrSystem(num_buckets=512)
        assert type(system.engine) is DedupEngine

"""``SystemConfig.shards`` threading through the R009 engine factory.

``build_engine`` is the one place the serving layer may construct an
engine: ``shards=1`` (the default) must build the exact plain
:class:`~repro.datared.dedup.DedupEngine` the pre-sharding systems
built, and ``shards >= 2`` must build a
:class:`~repro.datared.sharded.ShardedDedupEngine` that the full
system stack (staging batches, accounting, invariants) drives without
knowing the difference.
"""

import copy

import pytest

from repro.analysis.invariants import check_sharded_engine, check_system
from repro.datared.dedup import DedupEngine
from repro.datared.journal import RecoveryImage
from repro.datared.sharded import ShardedDedupEngine
from repro.systems import FidrSystem
from repro.systems.config import DurabilityPolicy, SystemConfig
from repro.systems.factory import build_engine

CHUNK = 4096

DURABLE = SystemConfig(durability=DurabilityPolicy(journal=True))


def _image_of(engine):
    return RecoveryImage(
        journal=engine.journal.to_bytes(),
        containers=copy.deepcopy(engine.containers),
    )


class TestBuildEngine:
    def test_default_config_builds_plain_engine(self):
        engine = build_engine(SystemConfig(), num_buckets=256)
        assert type(engine) is DedupEngine

    def test_sharded_config_builds_sharded_engine(self):
        engine = build_engine(SystemConfig(shards=4), num_buckets=256)
        try:
            assert type(engine) is ShardedDedupEngine
            assert engine.num_shards == 4
            assert len(engine.shards) == 4
            assert all(
                type(shard) is DedupEngine for shard in engine.shards
            )
        finally:
            engine.shutdown()

    def test_invalid_shard_count_rejected(self):
        with pytest.raises(ValueError):
            build_engine(SystemConfig(shards=0))

    def test_config_knobs_reach_every_shard(self):
        config = SystemConfig(shards=2, read_cache_chunks=8)
        engine = build_engine(config, num_buckets=128)
        try:
            for shard in engine.shards:
                assert shard.chunker.chunk_size == config.chunk_size
        finally:
            engine.shutdown()


class TestSystemWithShards:
    def test_fidr_system_runs_on_a_sharded_engine(self, rng):
        system = FidrSystem(
            num_buckets=512,
            config=SystemConfig(shards=2, batch_chunks=4),
        )
        try:
            assert isinstance(system.engine, ShardedDedupEngine)
            payloads = {}
            step = system.engine.chunker.blocks_per_chunk
            for index in range(12):
                data = rng.randbytes(CHUNK)
                system.write(index * step, data)
                payloads[index * step] = data
            system.flush()
            for lba, data in payloads.items():
                assert system.read(lba, 1) == data
            # Front-door vs engine accounting and the cluster ledger
            # both hold (check_system dispatches to the sharded checks).
            assert check_system(system) == []
        finally:
            system.engine.shutdown()

    def test_fidr_system_default_stays_unsharded(self):
        system = FidrSystem(num_buckets=512)
        assert type(system.engine) is DedupEngine


class TestDurabilityPolicy:
    def test_default_config_has_no_journal(self):
        engine = build_engine(SystemConfig(), num_buckets=256)
        assert engine.journal is None

    def test_policy_arms_journal_and_cadence(self):
        config = SystemConfig(
            durability=DurabilityPolicy(
                journal=True, checkpoint_every_commits=3
            )
        )
        with build_engine(config, num_buckets=256) as engine:
            assert engine.journal is not None
            assert engine.journal.checkpoint_every_commits == 3

    def test_sharded_policy_arms_one_journal_per_shard(self):
        config = SystemConfig(
            shards=2, durability=DurabilityPolicy(journal=True)
        )
        with build_engine(config, num_buckets=256) as engine:
            journals = [shard.journal for shard in engine.shards]
            assert all(journal is not None for journal in journals)
            assert len({id(journal) for journal in journals}) == 2


class TestRecoveryThroughFactory:
    def test_plain_recovery_preserves_reads(self, rng):
        state = {}
        with build_engine(DURABLE, num_buckets=512) as engine:
            for index in range(16):
                data = rng.randbytes(CHUNK)
                engine.write(index, data)
                state[index] = data
            image = _image_of(engine)
        recovered = build_engine(
            DURABLE, num_buckets=512, recover_from=image
        )
        with recovered:
            assert recovered.recovery is not None
            assert recovered.recovery.clean
            for lba, data in state.items():
                assert recovered.read(lba, 1).data == data
            # The recovered journal continues the durable history.
            assert recovered.journal.size_bytes >= len(image.journal)

    def test_sharded_recovery_is_shard_parallel(self, rng):
        config = SystemConfig(
            shards=2, durability=DurabilityPolicy(journal=True)
        )
        state = {}
        with build_engine(config, num_buckets=512) as engine:
            for index in range(24):
                data = rng.randbytes(CHUNK)
                engine.write(index, data)
                state[index] = data
            images = [_image_of(shard) for shard in engine.shards]
        recovered = build_engine(config, num_buckets=512, recover_from=images)
        with recovered:
            assert all(report.clean for report in recovered.recovery)
            assert recovered.recovery_lba_conflicts == 0
            assert recovered.recovery_snapshots_dropped == 0
            for lba, data in state.items():
                assert recovered.read(lba, 1).data == data
            assert check_sharded_engine(recovered) == []

    def test_plain_config_rejects_image_sequence(self):
        with pytest.raises(ValueError, match="one RecoveryImage"):
            build_engine(DURABLE, recover_from=[])

    def test_sharded_config_rejects_single_image(self, rng):
        config = SystemConfig(
            shards=2, durability=DurabilityPolicy(journal=True)
        )
        with build_engine(DURABLE, num_buckets=256) as donor:
            donor.write(0, rng.randbytes(CHUNK))
            image = _image_of(donor)
        with pytest.raises(ValueError, match="RecoveryImages"):
            build_engine(config, num_buckets=256, recover_from=image)

    def test_sharded_config_rejects_wrong_image_count(self, rng):
        config = SystemConfig(
            shards=3, durability=DurabilityPolicy(journal=True)
        )
        with build_engine(DURABLE, num_buckets=256) as donor:
            donor.write(0, rng.randbytes(CHUNK))
            image = _image_of(donor)
        with pytest.raises(ValueError, match="got 2"):
            build_engine(
                config, num_buckets=256, recover_from=[image, image]
            )

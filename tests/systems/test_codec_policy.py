"""CodecPolicy: the typed front door from SystemConfig to the codec
and fingerprint plugin registries, including the on_missing resolution
rules and the systems-layer wiring that threads the chosen plugins
through the engine, the NIC hash core, and the FPGA engines."""

from __future__ import annotations

import pytest

from repro.datared import codecs as _codecs
from repro.datared import hashing as _hashing
from repro.datared.compression import ModeledCompressor, ZlibCompressor
from repro.errors import MissingDependencyError
from repro.parallel import StagePool
from repro.systems.baseline import BaselineSystem
from repro.systems.config import CodecPolicy, SystemConfig
from repro.systems.fidr import FidrSystem

CHUNK = 4096


class TestCodecPolicy:
    def test_default_policy_is_the_byte_stable_pair(self):
        policy = CodecPolicy()
        assert isinstance(policy.build_compressor(), ZlibCompressor)
        assert policy.build_fingerprinter().name == "sha256"

    def test_level_and_ratio_parameters_flow_through(self):
        assert CodecPolicy(codec="zlib", level=1).build_compressor().level == 1
        modeled = CodecPolicy(
            codec="modeled", modeled_ratio=0.25
        ).build_compressor()
        assert isinstance(modeled, ModeledCompressor)
        assert modeled.compress(b"\x00" * CHUNK).stored_size == CHUNK // 4

    def test_on_missing_error_raises_typed(self, monkeypatch):
        monkeypatch.setattr(_codecs, "zstandard", None)
        policy = CodecPolicy(codec="zstd")
        assert policy.resolved_codec() == "zstd"
        with pytest.raises(MissingDependencyError):
            policy.build_compressor()

    def test_on_missing_fallback_degrades_with_a_warning(self, monkeypatch):
        monkeypatch.setattr(_codecs, "zstandard", None)
        monkeypatch.setattr(_hashing, "blake3", None)
        policy = CodecPolicy(
            codec="zstd", fingerprint="blake3", on_missing="fallback"
        )
        assert policy.resolved_codec() == "zlib"
        assert policy.resolved_fingerprint() == "sha256"
        with pytest.warns(RuntimeWarning, match="zstd"):
            compressor = policy.build_compressor()
        assert isinstance(compressor, ZlibCompressor)
        with pytest.warns(RuntimeWarning, match="blake3"):
            assert policy.build_fingerprinter().name == "sha256"

    def test_fallback_never_masks_a_typo(self):
        # Unknown names are bugs, not missing wheels: they pass through
        # resolution untouched so create_codec raises the ValueError.
        policy = CodecPolicy(codec="snappy", on_missing="fallback")
        assert policy.resolved_codec() == "snappy"
        with pytest.raises(ValueError, match="unknown codec"):
            policy.build_compressor()

    def test_available_codecs_do_not_warn(self):
        import warnings

        policy = CodecPolicy(codec="adaptive", on_missing="fallback")
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert policy.build_compressor().name == "adaptive"

    def test_on_missing_is_validated(self):
        with pytest.raises(ValueError, match="on_missing"):
            CodecPolicy(on_missing="ignore")


class TestSystemWiring:
    def test_config_policy_reaches_the_engine(self):
        config = SystemConfig(codec=CodecPolicy(codec="modeled"))
        system = FidrSystem(config=config)
        assert isinstance(system.engine.compressor, ModeledCompressor)
        # The NIC hash core and the engine share one fingerprinter, so
        # offloaded digests match host-side identity (idea a).
        assert system.nic.fingerprinter is system.engine.fingerprinter
        # The FPGA engines model whatever codec the policy selected.
        assert system.compression.compressor is system.engine.compressor

    def test_explicit_compressor_still_overrides(self, rng):
        system = BaselineSystem(compressor=ModeledCompressor(0.5))
        assert isinstance(system.engine.compressor, ModeledCompressor)
        data = rng.randbytes(CHUNK)
        system.write(0, data)
        assert system.read(0, 1) == data

    def test_string_compressor_is_removed(self):
        # The PR-6 deprecation period is over: names now raise.
        with pytest.raises(TypeError, match="CodecPolicy"):
            BaselineSystem(compressor="modeled")

    def test_systems_agree_under_a_shared_policy(self, rng):
        config = SystemConfig(codec=CodecPolicy(codec="adaptive"))
        baseline = BaselineSystem(config=config)
        fidr = FidrSystem(config=config)
        payload = rng.randbytes(CHUNK) + b"\x00" * CHUNK
        baseline.write(0, payload)
        fidr.write(0, payload)
        baseline.flush()
        fidr.flush()
        assert baseline.read(0, 2) == payload
        assert fidr.read(0, 2) == payload
        assert (
            baseline.engine.stats_snapshot() == fidr.engine.stats_snapshot()
        )


class TestAutoExecutor:
    def test_serial_pool_stays_thread(self):
        pool = StagePool(1, backend="auto")
        assert pool.backend == "thread"
        assert not pool.is_parallel

    def test_auto_resolves_by_core_count(self, monkeypatch):
        import repro.parallel as parallel

        monkeypatch.setattr(parallel.os, "cpu_count", lambda: 8)
        pool = StagePool(2, backend="auto")
        try:
            assert pool.backend == "process"
            assert pool.requires_pickling
        finally:
            pool.shutdown()

    def test_single_core_hosts_fall_back_to_threads(self, monkeypatch):
        import repro.parallel as parallel

        monkeypatch.setattr(parallel.os, "cpu_count", lambda: 1)
        pool = StagePool(4, backend="auto")
        try:
            assert pool.backend == "thread"
        finally:
            pool.shutdown()

"""Tests for the CIDR unique-chunk predictor."""

import pytest

from repro.systems.predictor import PredictionStats, UniqueChunkPredictor


class TestPrediction:
    def test_first_sight_predicted_unique(self, rng):
        predictor = UniqueChunkPredictor()
        assert predictor.predict_unique(rng.randbytes(4096))

    def test_repeat_predicted_duplicate(self, rng):
        predictor = UniqueChunkPredictor()
        data = rng.randbytes(4096)
        predictor.predict_unique(data)
        assert not predictor.predict_unique(data)

    def test_distinct_content_mostly_unique(self, rng):
        predictor = UniqueChunkPredictor()
        predictions = [
            predictor.predict_unique(rng.randbytes(4096)) for _ in range(500)
        ]
        # Bloom aliasing may cause a few false duplicates, not many.
        assert sum(predictions) > 480

    def test_accuracy_on_half_duplicate_stream(self, rng):
        predictor = UniqueChunkPredictor()
        pool = [rng.randbytes(4096) for _ in range(50)]
        seen = set()
        for step in range(1000):
            if step % 2:
                data = pool[step % len(pool)]
            else:
                data = rng.randbytes(4096)
            predicted = predictor.predict_unique(data)
            actually_unique = data not in seen
            seen.add(data)
            predictor.record_outcome(predicted, actually_unique)
        assert predictor.stats.accuracy > 0.95

    def test_validation(self):
        with pytest.raises(ValueError):
            UniqueChunkPredictor(num_bits=100)  # not a power of two
        with pytest.raises(ValueError):
            UniqueChunkPredictor(num_hashes=0)


class TestStats:
    def test_confusion_matrix(self):
        stats = PredictionStats()
        predictor = UniqueChunkPredictor()
        predictor.stats = stats
        predictor.record_outcome(True, True)
        predictor.record_outcome(True, False)
        predictor.record_outcome(False, True)
        predictor.record_outcome(False, False)
        assert stats.true_unique == 1
        assert stats.false_unique == 1
        assert stats.false_duplicate == 1
        assert stats.true_duplicate == 1
        assert stats.accuracy == pytest.approx(0.5)

    def test_empty_accuracy(self):
        assert PredictionStats().accuracy == 0.0

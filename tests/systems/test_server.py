"""Tests for the StorageServer facade and latency models."""

import pytest

from repro.datared.compression import ModeledCompressor
from repro.systems.latency import LatencyConfig, ReadLatencyModel, write_commit_latency
from repro.systems.server import StorageServer, SystemKind

CHUNK = 4096


class TestStorageServer:
    @pytest.mark.parametrize("kind", [SystemKind.BASELINE, SystemKind.FIDR])
    def test_build_and_roundtrip(self, kind, rng):
        server = StorageServer.build(
            kind, num_buckets=512, cache_lines=32,
            compressor=ModeledCompressor(0.5),
        )
        data = rng.randbytes(CHUNK)
        server.write(0, data)
        assert server.read(0, 1) == data
        assert server.chunk_size == CHUNK

    def test_reduction_stats_exposed(self, rng):
        server = StorageServer.build(SystemKind.FIDR, num_buckets=512)
        data = rng.randbytes(CHUNK)
        server.write(0, data)
        server.write(8, data)
        server.flush()  # stats reflect processed (not merely staged) writes
        assert server.reduction_stats.dedup_ratio == pytest.approx(0.5)

    def test_context_manager_flushes(self, rng):
        with StorageServer.build(SystemKind.FIDR, num_buckets=512) as server:
            server.write(0, rng.randbytes(CHUNK))
        assert server.system.engine.containers.sealed_count >= 1

    def test_report_available(self, rng):
        server = StorageServer.build(SystemKind.BASELINE, num_buckets=512)
        server.write(0, rng.randbytes(CHUNK))
        server.flush()
        report = server.report()
        assert report.logical_write_bytes == CHUNK

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            StorageServer.build("not-a-kind")


class TestReadLatency:
    def test_paper_anchor_points(self):
        model = ReadLatencyModel()
        baseline = model.baseline_read_latency(64).mean_s * 1e6
        fidr = model.fidr_read_latency(64).mean_s * 1e6
        assert baseline == pytest.approx(700, rel=0.03)
        assert fidr == pytest.approx(490, rel=0.03)

    def test_fidr_always_faster(self):
        model = ReadLatencyModel()
        for batch in (1, 16, 128):
            assert (
                model.fidr_read_latency(batch).mean_s
                < model.baseline_read_latency(batch).mean_s
            )

    def test_larger_batches_increase_queueing(self):
        model = ReadLatencyModel()
        small = model.baseline_read_latency(8).max_s
        large = model.baseline_read_latency(256).max_s
        assert large >= small

    def test_handoffs_drive_the_gap(self):
        quick = LatencyConfig(host_handoff_s=0.0, p2p_setup_s=0.0)
        model = ReadLatencyModel(quick)
        baseline = model.baseline_read_latency(16).mean_s
        fidr = model.fidr_read_latency(16).mean_s
        # Without software handoffs the two paths are nearly identical.
        assert baseline == pytest.approx(fidr, rel=0.25)


class TestWriteCommit:
    def test_fidr_matches_no_reduction(self):
        commits = write_commit_latency()
        assert commits["fidr"] == commits["no-reduction"]
        assert commits["baseline"] > commits["fidr"]

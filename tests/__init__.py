"""Test package."""
